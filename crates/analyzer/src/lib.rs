//! `ech-analyzer`: a dependency-free static analyzer for this
//! workspace's invariants.
//!
//! Nine rule families (see `DESIGN.md` §9):
//!
//! - **D1 determinism** — no wall clocks, OS entropy or order-sensitive
//!   hash iteration in seed-deterministic code (placement, sim, trace
//!   synthesis, fault injection).
//! - **D2 no-panic data path** — no `unwrap`/`expect`/`panic!`-family
//!   macros/indexing in the `Cluster` put/get/repair/reintegration call
//!   graph.
//! - **D3 retry exhaustiveness** — every data-path error variant is
//!   explicitly classified retryable-or-permanent in `cluster::retry`,
//!   with no wildcard arms.
//! - **D4 lock discipline** — no lock-order cycles, no locks held
//!   across retry/fault-injection points.
//! - **D5 atomic-ordering discipline** — `Ordering::Relaxed` only on
//!   statistics counters, classified by their declared constructor
//!   (`counter_u64`/`counter_observed_u64`); raw `std::sync` primitives
//!   banned outside the `sync` facade the model checker instruments.
//! - **D6 publish order** — header stamping only after the new view is
//!   stored on writer paths; placement-cache consults only under a
//!   pinned view. Publication and pin points are derived from
//!   `ArcSwap`-typed field declarations, not receiver names.
//! - **D7 RPC choke-point discipline** — `StorageNode` I/O methods
//!   reachable from the `Cluster` data path are called only through the
//!   `Cluster::rpc` choke point (the op closure handed to `rpc(..)` is
//!   the sanctioned direct call); a bypass dodges the breaker, the
//!   fault fabric and the model checker's message scheduler.
//! - **D8 deadline propagation** — every function that issues rpc sends
//!   holds an operation budget (a `Deadline` parameter or a minted
//!   `op_deadline()`); deadline-free retry runners and fresh
//!   `Deadline::unbounded()` constructions are banned wherever rpc is
//!   reachable.
//! - **D9 model/mutant pairing** — every entry in the model-checker's
//!   scenario table (`mc_models.rs`) names its role-opposed `pair`
//!   (correct protocol ↔ seeded mutant), the pairing resolves and
//!   crosses roles, and every mutant is quoted elsewhere in the CLI
//!   sources by the replay regression test pinning its counterexample.
//!
//! Findings carry stable line-number-free keys; a checked-in baseline
//! (`analyzer-baseline.txt`) records accepted debt and `--deny-new`
//! gates CI on anything not in it. Inline
//! `// ech-allow(<rule>): reason` comments suppress individual lines.

pub mod baseline;
pub mod lexer;
pub mod parse;
pub mod rules;

use std::path::{Path, PathBuf};

pub use rules::Finding;

/// One workspace source file (path + contents), the analyzer's input.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// Full file text.
    pub text: String,
}

/// Analyze a set of source files; returns unsuppressed findings sorted
/// by (file, line, rule) with occurrence-stable keys.
pub fn analyze(files: &[SourceFile]) -> Vec<Finding> {
    let units = rules::build_units(files);
    rules::run_all(&units)
}

/// Collect `crates/*/src/**/*.rs` under `root`, sorted by path.
pub fn collect_workspace_sources(root: &Path) -> std::io::Result<Vec<SourceFile>> {
    let mut paths: Vec<PathBuf> = Vec::new();
    let crates = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        let src = dir.join("src");
        if src.is_dir() {
            walk_rs(&src, &mut paths)?;
        }
    }
    paths.sort();
    let mut out = Vec::with_capacity(paths.len());
    for p in paths {
        let text = std::fs::read_to_string(&p)?;
        let rel = p
            .strip_prefix(root)
            .unwrap_or(&p)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        out.push(SourceFile { path: rel, text });
    }
    Ok(out)
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let p = entry?.path();
        if p.is_dir() {
            walk_rs(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// CLI entry point shared by the `ech-analyzer` binary and `ech lint`.
/// Returns the process exit code.
pub fn run_cli(args: &[String]) -> i32 {
    let mut root = PathBuf::from(".");
    let mut baseline_path: Option<PathBuf> = None;
    let mut deny_new = false;
    let mut write_baseline = false;
    let mut json = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--root" if i + 1 < args.len() => {
                root = PathBuf::from(&args[i + 1]);
                i += 2;
            }
            "--baseline" if i + 1 < args.len() => {
                baseline_path = Some(PathBuf::from(&args[i + 1]));
                i += 2;
            }
            "--deny-new" => {
                deny_new = true;
                i += 1;
            }
            "--json" => {
                json = true;
                i += 1;
            }
            "--write-baseline" => {
                write_baseline = true;
                i += 1;
            }
            "--help" | "-h" => {
                print_help();
                return 0;
            }
            other => {
                eprintln!("error: unknown argument `{other}` (try --help)");
                return 2;
            }
        }
    }
    let baseline_path = baseline_path.unwrap_or_else(|| root.join("analyzer-baseline.txt"));
    let files = match collect_workspace_sources(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!(
                "error: cannot read workspace sources under {}: {e}",
                root.display()
            );
            return 2;
        }
    };
    let findings = analyze(&files);
    if write_baseline {
        let text = baseline::render(&findings);
        if let Err(e) = std::fs::write(&baseline_path, text) {
            eprintln!("error: cannot write {}: {e}", baseline_path.display());
            return 2;
        }
        println!(
            "wrote {} finding(s) to {}",
            findings.len(),
            baseline_path.display()
        );
        return 0;
    }
    let known = std::fs::read_to_string(&baseline_path)
        .map(|t| baseline::parse(&t))
        .unwrap_or_default();
    let delta = baseline::diff(&findings, &known);
    if json {
        // Machine-readable report: same findings, same exit-code
        // semantics, one JSON object on stdout (hand-rendered — the
        // analyzer stays dependency-free).
        let rows: Vec<String> = findings
            .iter()
            .map(|f| {
                format!(
                    "    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"key\": \"{}\", \
                     \"baselined\": {}, \"message\": \"{}\"}}",
                    f.rule,
                    json_escape(&f.file),
                    f.line,
                    json_escape(&f.key),
                    known.contains(&f.key),
                    json_escape(&f.message)
                )
            })
            .collect();
        let stale: Vec<String> = delta
            .stale
            .iter()
            .map(|k| format!("\"{}\"", json_escape(k)))
            .collect();
        println!(
            "{{\n  \"findings\": [\n{}\n  ],\n  \"new\": {},\n  \"stale\": [{}]\n}}",
            rows.join(",\n"),
            delta.new.len(),
            stale.join(", ")
        );
    } else {
        for f in &findings {
            let status = if known.contains(&f.key) {
                "warning"
            } else {
                "error"
            };
            println!("{status}[{}]: {}", f.rule, f.message);
            println!("  --> {}:{}", f.file, f.line);
            println!("  key: {}", f.key);
        }
        for k in &delta.stale {
            println!("note: baseline entry no longer produced (stale): {k}");
        }
        println!(
            "{} finding(s): {} baselined, {} new, {} stale baseline entr(ies)",
            findings.len(),
            findings.len() - delta.new.len(),
            delta.new.len(),
            delta.stale.len()
        );
    }
    if deny_new && (!delta.new.is_empty() || !delta.stale.is_empty()) {
        if !delta.new.is_empty() {
            eprintln!(
                "error: {} new finding(s) not in {} — fix them, add an \
                 `// ech-allow(<rule>): reason`, or regenerate the baseline",
                delta.new.len(),
                baseline_path.display()
            );
        }
        if !delta.stale.is_empty() {
            eprintln!(
                "error: {} stale baseline entr(ies) in {} — debt was paid, \
                 regenerate the baseline to lock in the improvement",
                delta.stale.len(),
                baseline_path.display()
            );
        }
        return 1;
    }
    0
}

/// Minimal JSON string escaping for the `--json` report.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn print_help() {
    println!(
        "ech-analyzer: workspace invariant linter (rules D1-D9)\n\n\
         USAGE: ech-analyzer [--root DIR] [--baseline FILE] [--deny-new] [--write-baseline] [--json]\n\n\
         OPTIONS:\n  \
         --root DIR         workspace root (default: .)\n  \
         --baseline FILE    baseline file (default: <root>/analyzer-baseline.txt)\n  \
         --deny-new         exit 1 on findings absent from the baseline or stale entries\n  \
         --write-baseline   rewrite the baseline from current findings\n  \
         --json             render the report as one JSON object on stdout\n  \
         -h, --help         show this help"
    );
}
