//! Baseline file handling: known findings are recorded (one key per
//! line) so CI can gate on *new* violations while the existing debt is
//! burned down incrementally.

use std::collections::BTreeSet;

use crate::rules::Finding;

/// Parse a baseline file's text into its key set. Lines starting with
/// `#` and blank lines are ignored.
pub fn parse(text: &str) -> BTreeSet<String> {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(str::to_string)
        .collect()
}

/// Render findings into baseline text, sorted and annotated.
pub fn render(findings: &[Finding]) -> String {
    let mut keys: Vec<&str> = findings.iter().map(|f| f.key.as_str()).collect();
    keys.sort_unstable();
    let mut out = String::from(
        "# ech-analyzer baseline: known findings, one stable key per line.\n\
         # Regenerate with `ech-analyzer --write-baseline`; CI denies keys not here.\n",
    );
    for k in keys {
        out.push_str(k);
        out.push('\n');
    }
    out
}

/// Comparison of current findings against a baseline.
#[derive(Debug, Default)]
pub struct Delta<'a> {
    /// Findings whose key is not in the baseline.
    pub new: Vec<&'a Finding>,
    /// Baseline keys no longer produced (stale — debt was paid).
    pub stale: Vec<String>,
}

/// Diff `findings` against `baseline` keys.
pub fn diff<'a>(findings: &'a [Finding], baseline: &BTreeSet<String>) -> Delta<'a> {
    let current: BTreeSet<&str> = findings.iter().map(|f| f.key.as_str()).collect();
    Delta {
        new: findings
            .iter()
            .filter(|f| !baseline.contains(&f.key))
            .collect(),
        stale: baseline
            .iter()
            .filter(|k| !current.contains(k.as_str()))
            .cloned()
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(key: &str) -> Finding {
        Finding {
            rule: "D2",
            file: "x.rs".into(),
            line: 1,
            key: key.into(),
            message: String::new(),
        }
    }

    #[test]
    fn roundtrip_and_diff() {
        let findings = vec![f("D2 a.rs f unwrap#0"), f("D2 a.rs f unwrap#1")];
        let text = render(&findings);
        let keys = parse(&text);
        assert_eq!(keys.len(), 2);
        let d = diff(&findings, &keys);
        assert!(d.new.is_empty() && d.stale.is_empty());

        let mut smaller = keys.clone();
        smaller.remove("D2 a.rs f unwrap#1");
        smaller.insert("D2 gone.rs g panic!#0".into());
        let d = diff(&findings, &smaller);
        assert_eq!(d.new.len(), 1);
        assert_eq!(d.new[0].key, "D2 a.rs f unwrap#1");
        assert_eq!(d.stale, ["D2 gone.rs g panic!#0"]);
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let keys = parse("# header\n\nD1 a.rs f Instant::now#0\n  \n# tail\n");
        assert_eq!(keys.len(), 1);
    }
}
