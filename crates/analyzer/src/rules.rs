//! The nine rule families (D1–D9) over parsed source files.
//!
//! Each rule produces [`Finding`]s with a stable, line-number-free
//! `key` so the baseline survives unrelated edits, plus a 1-based line
//! for human-facing diagnostics.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{suppression_cover, Lexed, TokKind, Token};
use crate::parse::{matching_brace, parse, FnInfo, ParsedFile};
use crate::SourceFile;

/// One diagnostic produced by a rule.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Rule id (`"D1"`..`"D9"`).
    pub rule: &'static str,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line of the offending token.
    pub line: u32,
    /// Stable baseline key (no line numbers).
    pub key: String,
    /// Human-readable message.
    pub message: String,
}

/// A lexed+parsed file ready for rule scanning.
pub struct Unit {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// Token stream and suppressions.
    pub lexed: Lexed,
    /// Item structure.
    pub parsed: ParsedFile,
    /// Raw file text. The lexer erases string-literal contents, so
    /// rules that key on literal values (D9 reads model names out of
    /// `Model { name: "…" }` tables) scan this instead.
    pub text: String,
}

/// Lex and parse every source file.
pub fn build_units(files: &[SourceFile]) -> Vec<Unit> {
    files
        .iter()
        .map(|f| {
            let lexed = crate::lexer::lex(&f.text);
            let parsed = parse(&lexed);
            Unit {
                path: f.path.clone(),
                lexed,
                parsed,
                text: f.text.clone(),
            }
        })
        .collect()
}

/// Is `line` in `unit` suppressed for `rule`?
fn suppressed(unit: &Unit, rule: &str, line: u32) -> bool {
    unit.lexed.suppressions.iter().any(|s| {
        if !s.rules.iter().any(|r| r == rule) {
            return false;
        }
        let (own, next) = suppression_cover(&unit.lexed, s);
        own == line || next == Some(line)
    })
}

/// Assign `#occ` occurrence suffixes so identical keys stay distinct
/// and stable in declaration order.
fn finalize_keys(findings: &mut [Finding]) {
    let mut seen: BTreeMap<String, u32> = BTreeMap::new();
    for f in findings.iter_mut() {
        let n = seen.entry(f.key.clone()).or_insert(0);
        f.key = format!("{}#{}", f.key, n);
        *n += 1;
    }
}

/// Run every rule over the units; returns unsuppressed findings sorted
/// by (file, line, rule).
pub fn run_all(units: &[Unit]) -> Vec<Finding> {
    let mut findings = Vec::new();
    d1_determinism(units, &mut findings);
    d2_no_panic(units, &mut findings);
    d3_retry_exhaustive(units, &mut findings);
    d4_lock_discipline(units, &mut findings);
    d5_atomic_discipline(units, &mut findings);
    d6_publish_order(units, &mut findings);
    d7_rpc_choke_point(units, &mut findings);
    d8_deadline_propagation(units, &mut findings);
    d9_model_pairing(units, &mut findings);
    findings.retain(|f| {
        let unit = units.iter().find(|u| u.path == f.file);
        !unit.is_some_and(|u| suppressed(u, f.rule, f.line))
    });
    findings
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    finalize_keys(&mut findings);
    findings
}

// ---------------------------------------------------------------- D1

/// Files whose behaviour must be bit-deterministic under a fixed seed.
fn d1_scoped(path: &str) -> bool {
    path == "crates/core/src/placement.rs"
        || path == "crates/core/src/engine.rs"
        || path.starts_with("crates/sim/src/")
        || path == "crates/traces/src/synth.rs"
        || path == "crates/cluster/src/fault.rs"
        || path == "crates/cluster/src/net.rs"
}

fn d1_determinism(units: &[Unit], out: &mut Vec<Finding>) {
    for u in units.iter().filter(|u| d1_scoped(&u.path)) {
        let t = &u.lexed.tokens;
        // Token ranges belonging to test fns are exempt.
        let test_ranges: Vec<(usize, usize)> = u
            .parsed
            .fns
            .iter()
            .filter(|f| f.is_test)
            .map(|f| f.body)
            .collect();
        let in_test = |i: usize| test_ranges.iter().any(|&(a, b)| i >= a && i <= b);
        for (i, tok) in t.iter().enumerate() {
            if tok.kind != TokKind::Ident || in_test(i) {
                continue;
            }
            let path2 = |a: &str, b: &str| {
                tok.is_ident(a)
                    && t.get(i + 1).is_some_and(|x| x.is_punct(':'))
                    && t.get(i + 2).is_some_and(|x| x.is_punct(':'))
                    && t.get(i + 3).is_some_and(|x| x.is_ident(b))
            };
            let hit: Option<&str> = if path2("Instant", "now") {
                Some("Instant::now")
            } else if tok.is_ident("SystemTime") {
                Some("SystemTime")
            } else if tok.is_ident("thread_rng") {
                Some("thread_rng")
            } else if path2("thread", "sleep") {
                Some("thread::sleep")
            } else if tok.is_ident("HashMap") || tok.is_ident("HashSet") {
                Some(if tok.text == "HashMap" {
                    "HashMap"
                } else {
                    "HashSet"
                })
            } else {
                None
            };
            if let Some(what) = hit {
                let ctx = enclosing_fn(&u.parsed, i)
                    .map(|f| f.qual.clone())
                    .unwrap_or_else(|| "<item>".into());
                out.push(Finding {
                    rule: "D1",
                    file: u.path.clone(),
                    line: tok.line,
                    key: format!("D1 {} {} {}", u.path, ctx, what),
                    message: format!(
                        "nondeterminism source `{what}` in seed-deterministic code ({ctx}); \
                         use the injected Clock / seeded rng / BTree collections"
                    ),
                });
            }
        }
    }
}

fn enclosing_fn(parsed: &ParsedFile, tok_idx: usize) -> Option<&FnInfo> {
    parsed
        .fns
        .iter()
        .filter(|f| tok_idx >= f.body.0 && tok_idx <= f.body.1)
        .min_by_key(|f| f.body.1 - f.body.0)
}

// ---------------------------------------------------------------- D2

/// Entry points of the data path whose call graph must be panic-free.
const D2_ROOTS: &[&str] = &[
    "Cluster::put",
    "Cluster::put_at",
    "Cluster::get",
    "Cluster::get_with",
    "Cluster::hedged_get",
    "Cluster::locate",
    "Cluster::reintegrate_step",
    "Cluster::reintegrate_all",
    "Cluster::heal_dirty",
    "Cluster::repair",
    "Cluster::crash_node",
    "Cluster::revive_node",
    "Cluster::detect_and_mark_crashed",
    "Cluster::is_fully_placed",
    "Cluster::under_replicated",
    "Cluster::node",
    // The network fault plane (`cluster::net`) sits on every data-path
    // send inside `Cluster::rpc`. Its entry points are rooted explicitly
    // rather than relying on call resolution alone: the rpc layer binds
    // the fabric through `if let Some(net) = &self.net` patterns whose
    // receivers only resolve by bare-name fallback, and the no-panic /
    // lock-discipline guarantees must not silently lapse if that
    // fallback ever stops firing.
    "NetFabric::before_send",
    "NetFabric::partition_active",
    "NetFabric::heal_partitions",
    "NetFabric::rpc_timeout",
    "NetFabric::stats",
    "ReplicaBreakers::try_acquire",
    "ReplicaBreakers::record_success",
    "ReplicaBreakers::record_failure",
    "ReplicaBreakers::snapshot",
];

/// Crates whose fns participate in D2/D4 call-graph resolution.
fn graph_scoped(path: &str) -> bool {
    path.starts_with("crates/cluster/src/")
        || path.starts_with("crates/kvstore/src/")
        || path.starts_with("crates/core/src/")
}

/// Method names too generic to resolve by name alone; following them
/// produces false edges (e.g. `Cluster::get` vs `HashMap::get` on a
/// closure-bound receiver). The list only gates the bare-name fallback:
/// typed receivers (declared fields, helper return types, trait
/// objects) resolve before it is consulted, which is why `len` could be
/// dropped from it. The residual under-approximation is documented in
/// DESIGN.md §9.
const CALL_IGNORE: &[&str] = &["get", "clone", "new", "into", "from", "iter"];

struct Graph<'a> {
    /// fn qual -> (unit index, FnInfo)
    fns: BTreeMap<&'a str, (usize, &'a FnInfo)>,
    /// bare name -> quals (for unqualified call resolution)
    by_name: BTreeMap<&'a str, Vec<&'a str>>,
    /// (struct name, field name) -> field's base type, for resolving
    /// `self.<field>.<method>(..)` receivers by declared type.
    fields: BTreeMap<(&'a str, &'a str), &'a str>,
    /// (struct name, field name) -> declared wrapper chain
    /// (outermost-first), for classifying fields by facade type —
    /// e.g. `view: ArcSwap<ClusterView>` maps to `["ArcSwap"]`.
    wrapped: BTreeMap<(&'a str, &'a str), &'a [String]>,
    /// trait name -> implementing types, so a `dyn Trait` receiver fans
    /// out to every impl that defines the method.
    trait_impls: BTreeMap<&'a str, Vec<&'a str>>,
}

fn build_graph(units: &[Unit]) -> Graph<'_> {
    let mut fns: BTreeMap<&str, (usize, &FnInfo)> = BTreeMap::new();
    let mut by_name: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    let mut fields: BTreeMap<(&str, &str), &str> = BTreeMap::new();
    let mut wrapped: BTreeMap<(&str, &str), &[String]> = BTreeMap::new();
    let mut trait_impls: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (ui, u) in units.iter().enumerate() {
        if !graph_scoped(&u.path) {
            continue;
        }
        for f in &u.parsed.fns {
            if f.is_test {
                continue;
            }
            fns.entry(f.qual.as_str()).or_insert((ui, f));
            by_name.entry(f.name.as_str()).or_default().push(&f.qual);
        }
        for s in &u.parsed.structs {
            for (fname, ftype) in &s.fields {
                fields
                    .entry((s.name.as_str(), fname.as_str()))
                    .or_insert(ftype.as_str());
            }
            for (fname, chain) in &s.wrapped {
                wrapped
                    .entry((s.name.as_str(), fname.as_str()))
                    .or_insert(chain.as_slice());
            }
        }
        for imp in &u.parsed.impls {
            if let Some(tr) = &imp.trait_name {
                trait_impls
                    .entry(tr.as_str())
                    .or_default()
                    .push(imp.type_name.as_str());
            }
        }
    }
    for tys in trait_impls.values_mut() {
        tys.sort_unstable();
        tys.dedup();
    }
    Graph {
        fns,
        by_name,
        fields,
        wrapped,
        trait_impls,
    }
}

/// Guard/handle hops that forward method calls to the wrapped value:
/// `self.dirty.clone().push_back(..)` still targets `KvDirtyTable`.
const RECEIVER_HOPS: &[&str] = &[
    "lock",
    "read",
    "write",
    "clone",
    "load",
    "borrow",
    "borrow_mut",
];

/// Field receiver of the method call at token `i`, if the receiver is
/// `self.<field>` — directly, through one [`RECEIVER_HOPS`] hop, or via
/// a let-bound alias (`let d = self.dirty.clone(); d.push_back(..)`).
fn receiver_field(t: &[Token], i: usize, aliases: &BTreeMap<String, String>) -> Option<String> {
    if i < 2 || !t[i - 1].is_punct('.') {
        return None;
    }
    // `k` is the dot introducing the method; hop back over one
    // `.lock()`-style link in the chain.
    let mut k = i - 1;
    if k >= 4
        && t[k - 1].is_punct(')')
        && t[k - 2].is_punct('(')
        && t[k - 3].kind == TokKind::Ident
        && RECEIVER_HOPS.contains(&t[k - 3].text.as_str())
        && t[k - 4].is_punct('.')
    {
        k -= 4;
    }
    // `self . field .` — the declared-field receiver.
    if k >= 3
        && t[k - 1].kind == TokKind::Ident
        && t[k - 2].is_punct('.')
        && t[k - 3].is_ident("self")
    {
        return Some(t[k - 1].text.clone());
    }
    // `alias .` — a local bound from `self.<field>` earlier in the body.
    if k >= 1 && t[k - 1].kind == TokKind::Ident && (k < 2 || !t[k - 2].is_punct('.')) {
        return aliases.get(&t[k - 1].text).cloned();
    }
    None
}

/// Locals bound straight off a field: `let [mut] name = self.field ...`.
fn local_aliases(t: &[Token], f: &FnInfo) -> BTreeMap<String, String> {
    let (a, b) = f.body;
    let mut out = BTreeMap::new();
    for i in a..=b.min(t.len().saturating_sub(1)) {
        if !t[i].is_ident("let") {
            continue;
        }
        let mut k = i + 1;
        if t.get(k).is_some_and(|x| x.is_ident("mut")) {
            k += 1;
        }
        let Some(name) = t.get(k).filter(|x| x.kind == TokKind::Ident) else {
            continue;
        };
        if t.get(k + 1).is_some_and(|x| x.is_punct('='))
            && !t.get(k + 2).is_some_and(|x| x.is_punct('='))
            && t.get(k + 2).is_some_and(|x| x.is_ident("self"))
            && t.get(k + 3).is_some_and(|x| x.is_punct('.'))
            && t.get(k + 4).is_some_and(|x| x.kind == TokKind::Ident)
        {
            out.insert(name.text.clone(), t[k + 4].text.clone());
        }
    }
    out
}

/// How a method call's receiver typed out.
enum Recv<'a> {
    /// Declared type found and it defines the method in graph scope —
    /// several targets when the receiver is a trait object.
    Methods(Vec<&'a str>),
    /// Declared type found but the method is foreign to the graph (a
    /// std/derived method): no edge, and no name-based guessing either.
    External,
    /// Receiver type undetermined; name heuristics may proceed.
    Unknown,
}

/// Base return type of a `self.helper(..)[?].method(..)` receiver: one
/// hop through a helper defined on the enclosing type, `?`-transparent
/// because [`RET_WRAPPERS`](crate::parse) strips `Result`/`Option`.
fn helper_ret_base(g: &Graph<'_>, t: &[Token], i: usize, f: &FnInfo) -> Option<String> {
    if i < 1 || !t[i - 1].is_punct('.') {
        return None;
    }
    let mut k = i - 1; // the dot introducing the method
    if k >= 1 && t[k - 1].is_punct('?') {
        k -= 1;
    }
    if k < 1 || !t[k - 1].is_punct(')') {
        return None;
    }
    // Match the helper's argument parens backwards.
    let mut depth = 0i32;
    let mut open = None;
    for j in (0..k).rev() {
        if t[j].is_punct(')') {
            depth += 1;
        } else if t[j].is_punct('(') {
            depth -= 1;
            if depth == 0 {
                open = Some(j);
                break;
            }
        }
    }
    let open = open?;
    if open < 3
        || t[open - 1].kind != TokKind::Ident
        || !t[open - 2].is_punct('.')
        || !t[open - 3].is_ident("self")
    {
        return None;
    }
    let owner = f.owner.as_deref()?;
    let helper = format!("{owner}::{}", t[open - 1].text);
    g.fns
        .get(helper.as_str())
        .and_then(|(_, fi)| fi.ret.clone())
}

/// Type the receiver of the method call at `i` by declaration: a
/// `self.<field>` receiver (direct, hopped, or aliased) by the field's
/// declared type, a `self.helper(..)[?]` receiver — or an alias bound
/// from one — by the helper's declared return type.
fn resolve_receiver<'a>(
    g: &Graph<'a>,
    t: &[Token],
    i: usize,
    f: &FnInfo,
    aliases: &BTreeMap<String, String>,
) -> Recv<'a> {
    let owner = f.owner.as_deref();
    let base = receiver_field(t, i, aliases)
        .and_then(|field| {
            let o = owner?;
            g.fields
                .get(&(o, field.as_str()))
                .map(|b| (*b).to_string())
                .or_else(|| {
                    // `let n = self.node(x)?; n.put(..)` — not a field,
                    // but the bound helper's return type is the type.
                    g.fns
                        .get(format!("{o}::{field}").as_str())
                        .and_then(|(_, fi)| fi.ret.clone())
                })
        })
        .or_else(|| helper_ret_base(g, t, i, f));
    let Some(base) = base else {
        return Recv::Unknown;
    };
    let base = if base == "Self" {
        match owner {
            Some(o) => o.to_string(),
            None => return Recv::Unknown,
        }
    } else {
        base
    };
    let m = t[i].text.as_str();
    if let Some((k, _)) = g.fns.get_key_value(format!("{base}::{m}").as_str()) {
        return Recv::Methods(vec![*k]);
    }
    // Trait-object receiver: every implementing type that defines the
    // method is a possible target.
    if let Some(impls) = g.trait_impls.get(base.as_str()) {
        let targets: Vec<&str> = impls
            .iter()
            .filter_map(|ty| {
                g.fns
                    .get_key_value(format!("{ty}::{m}").as_str())
                    .map(|(k, _)| *k)
            })
            .collect();
        if !targets.is_empty() {
            return Recv::Methods(targets);
        }
    }
    Recv::External
}

/// Resolve the call at token `i` (already known to be `name(`-shaped)
/// to its possible graph targets. Typed-receiver resolution decides
/// first; a typed receiver whose method isn't in the graph produces
/// *no* edge rather than falling back to name guessing. Qualified
/// `Type::name(..)` misses are likewise final — falling through would
/// invent edges for std paths like `Vec::new(..)`.
fn resolve_call<'a>(
    g: &Graph<'a>,
    t: &[Token],
    i: usize,
    f: &FnInfo,
    aliases: &BTreeMap<String, String>,
) -> Vec<&'a str> {
    match resolve_receiver(g, t, i, f, aliases) {
        Recv::Methods(ms) => return ms,
        Recv::External => return Vec::new(),
        Recv::Unknown => {}
    }
    let name = t[i].text.as_str();
    if i >= 3 && t[i - 1].is_punct(':') && t[i - 2].is_punct(':') && t[i - 3].kind == TokKind::Ident
    {
        let ty = t[i - 3].text.as_str();
        let ty = match (ty, f.owner.as_deref()) {
            ("Self", Some(o)) => o,
            ("Self", None) => return Vec::new(),
            _ => ty,
        };
        return g
            .fns
            .get_key_value(format!("{ty}::{name}").as_str())
            .map(|(k, _)| vec![*k])
            .unwrap_or_default();
    }
    if CALL_IGNORE.contains(&name) {
        return Vec::new();
    }
    // Bare-name fallback: prefer a same-owner method, else accept a
    // unique global match.
    if let Some(cands) = g.by_name.get(name) {
        if let Some(owner) = &f.owner {
            let own = format!("{owner}::{name}");
            if let Some(q) = cands.iter().find(|q| **q == own) {
                return vec![q];
            }
        }
        if cands.len() == 1 {
            return vec![cands[0]];
        }
    }
    Vec::new()
}

/// Qualified names of fns called from `f`'s body.
fn callees<'a>(units: &[Unit], g: &Graph<'a>, ui: usize, f: &FnInfo) -> Vec<&'a str> {
    let t = &units[ui].lexed.tokens;
    let mut out = Vec::new();
    let (a, b) = f.body;
    let aliases = local_aliases(t, f);
    for i in a..=b.min(t.len().saturating_sub(1)) {
        let tok = &t[i];
        if tok.kind != TokKind::Ident {
            continue;
        }
        // A call looks like `name (` possibly with `::<..>` turbofish —
        // we only need the common `name(` and `name::<` shapes plus
        // `.name(` method calls.
        let next_is_call = t.get(i + 1).is_some_and(|x| x.is_punct('('))
            || (t.get(i + 1).is_some_and(|x| x.is_punct(':'))
                && t.get(i + 2).is_some_and(|x| x.is_punct(':'))
                && t.get(i + 3).is_some_and(|x| x.is_punct('<')));
        if !next_is_call {
            continue;
        }
        out.extend(resolve_call(g, t, i, f, &aliases));
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// All fns reachable from the D2 roots (inclusive).
fn d2_reachable<'a>(units: &[Unit], g: &Graph<'a>) -> BTreeSet<&'a str> {
    let mut reach: BTreeSet<&str> = BTreeSet::new();
    let mut work: Vec<&str> = Vec::new();
    for r in D2_ROOTS {
        if let Some((k, _)) = g.fns.get_key_value(*r) {
            reach.insert(k);
            work.push(k);
        }
    }
    while let Some(q) = work.pop() {
        let (ui, f) = g.fns[q];
        for c in callees(units, g, ui, f) {
            if reach.insert(c) {
                work.push(c);
            }
        }
    }
    reach
}

fn d2_no_panic(units: &[Unit], out: &mut Vec<Finding>) {
    let g = build_graph(units);
    let reach = d2_reachable(units, &g);
    for q in &reach {
        let (ui, f) = g.fns[q];
        let u = &units[ui];
        let t = &u.lexed.tokens;
        let (a, b) = f.body;
        for i in a..=b.min(t.len().saturating_sub(1)) {
            let tok = &t[i];
            let hit: Option<String> = if tok.kind == TokKind::Ident
                && (tok.text == "unwrap" || tok.text == "expect")
                && i > 0
                && t[i - 1].is_punct('.')
                && t.get(i + 1).is_some_and(|x| x.is_punct('('))
            {
                Some(format!(".{}()", tok.text))
            } else if tok.kind == TokKind::Ident
                && matches!(
                    tok.text.as_str(),
                    "panic" | "unreachable" | "todo" | "unimplemented"
                )
                && t.get(i + 1).is_some_and(|x| x.is_punct('!'))
            {
                Some(format!("{}!", tok.text))
            } else if tok.is_punct('[')
                && i > 0
                && (t[i - 1].kind == TokKind::Ident
                    || t[i - 1].is_punct(')')
                    || t[i - 1].is_punct(']'))
                // `name[` after an ident that is a type position (e.g.
                // `[u8; 4]` array types start a line or follow `:`/`=`)
                // still matches; indexing heuristic accepts that noise.
                && !t.get(i + 1).is_some_and(|x| x.is_punct(']'))
            {
                Some("indexing[]".into())
            } else {
                None
            };
            if let Some(what) = hit {
                out.push(Finding {
                    rule: "D2",
                    file: u.path.clone(),
                    line: tok.line,
                    key: format!("D2 {} {} {}", u.path, f.qual, what),
                    message: format!(
                        "possible panic `{what}` on the data path (reachable from a \
                         Cluster entry point via {}); return a classified error instead",
                        f.qual
                    ),
                });
            }
        }
    }
}

// ---------------------------------------------------------------- D3

/// Error enums whose variants must be classified in `cluster::retry`.
const D3_ENUMS: &[(&str, &str)] = &[
    ("ClusterError", "crates/cluster/src/cluster.rs"),
    ("NodeError", "crates/cluster/src/node.rs"),
    ("KvError", "crates/kvstore/src/error.rs"),
    ("PlacementError", "crates/core/src/placement.rs"),
];

fn d3_retry_exhaustive(units: &[Unit], out: &mut Vec<Finding>) {
    let retry = units
        .iter()
        .find(|u| u.path == "crates/cluster/src/retry.rs");
    for (enum_name, def_path) in D3_ENUMS {
        let Some(def_unit) = units.iter().find(|u| u.path == *def_path) else {
            continue;
        };
        let Some(e) = def_unit
            .parsed
            .enums
            .iter()
            .find(|e| e.name == *enum_name && !e.is_test)
        else {
            continue;
        };
        let Some(retry) = retry else {
            out.push(Finding {
                rule: "D3",
                file: def_path.to_string(),
                line: e.line,
                key: format!("D3 {} {} no-retry-module", def_path, enum_name),
                message: format!(
                    "`{enum_name}` has no retry classification: crates/cluster/src/retry.rs \
                     is missing"
                ),
            });
            continue;
        };
        // Find `impl Classify for <enum_name>` in retry.rs.
        let imp = retry
            .parsed
            .impls
            .iter()
            .find(|i| i.trait_name.as_deref() == Some("Classify") && i.type_name == *enum_name);
        let Some(imp) = imp else {
            out.push(Finding {
                rule: "D3",
                file: "crates/cluster/src/retry.rs".into(),
                line: 1,
                key: format!(
                    "D3 crates/cluster/src/retry.rs {} unclassified-enum",
                    enum_name
                ),
                message: format!(
                    "error enum `{enum_name}` ({def_path}) has no `impl Classify` in \
                     cluster::retry — every data-path error must be retryable-or-permanent"
                ),
            });
            continue;
        };
        let t = &retry.lexed.tokens;
        let (a, b) = imp.body;
        // Variants referenced as `EnumName :: Variant` inside the impl.
        let mut mentioned: BTreeSet<&str> = BTreeSet::new();
        let mut wildcard_line = None;
        for i in a..=b.min(t.len().saturating_sub(1)) {
            let tok = &t[i];
            if tok.is_ident(enum_name)
                && t.get(i + 1).is_some_and(|x| x.is_punct(':'))
                && t.get(i + 2).is_some_and(|x| x.is_punct(':'))
            {
                if let Some(v) = t.get(i + 3) {
                    if let Some(known) = e
                        .variants
                        .iter()
                        .find(|kv| v.is_ident(kv))
                        .map(|s| s.as_str())
                    {
                        mentioned.insert(known);
                    }
                }
            }
            // `Self :: Variant` also counts.
            if tok.is_ident("Self")
                && t.get(i + 1).is_some_and(|x| x.is_punct(':'))
                && t.get(i + 2).is_some_and(|x| x.is_punct(':'))
            {
                if let Some(v) = t.get(i + 3) {
                    if let Some(known) = e
                        .variants
                        .iter()
                        .find(|kv| v.is_ident(kv))
                        .map(|s| s.as_str())
                    {
                        mentioned.insert(known);
                    }
                }
            }
            // Wildcard match arm `_ =>` hides unclassified variants.
            if tok.is_ident("_")
                && t.get(i + 1).is_some_and(|x| x.is_punct('='))
                && t.get(i + 2).is_some_and(|x| x.is_punct('>'))
            {
                wildcard_line.get_or_insert(tok.line);
            }
        }
        if let Some(line) = wildcard_line {
            out.push(Finding {
                rule: "D3",
                file: "crates/cluster/src/retry.rs".into(),
                line,
                key: format!("D3 crates/cluster/src/retry.rs {} wildcard-arm", enum_name),
                message: format!(
                    "wildcard `_ =>` arm in `impl Classify for {enum_name}`: new variants \
                     would silently inherit a class; match every variant explicitly"
                ),
            });
        }
        for v in &e.variants {
            if !mentioned.contains(v.as_str()) {
                out.push(Finding {
                    rule: "D3",
                    file: "crates/cluster/src/retry.rs".into(),
                    line: t.get(a).map_or(1, |x| x.line),
                    key: format!(
                        "D3 crates/cluster/src/retry.rs {} missing-variant {}",
                        enum_name, v
                    ),
                    message: format!(
                        "`{enum_name}::{v}` is not classified in `impl Classify for \
                         {enum_name}` — decide retryable or permanent"
                    ),
                });
            }
        }
    }
}

// ---------------------------------------------------------------- D4

/// Function names that are retry/fault-injection points: holding a lock
/// across a call that can reach one of these risks deadlock with the
/// fault injector's delays and unbounded retry backoff.
const D4_RETRY_POINTS: &[&str] = &[
    "run",
    "run_with",
    "run_counted",
    "run_counted_with",
    "kv_retry",
    "before_node_op",
];

#[derive(Debug)]
struct LockSite {
    /// Resource name: the ident before the `.lock()/.read()/.write()` dot.
    resource: String,
    /// Token index of the method ident.
    at: usize,
    line: u32,
    /// Token index past which the guard is dead.
    live_until: usize,
}

/// Extract lock acquisitions in `f`'s body with guard liveness ranges.
fn lock_sites(t: &[Token], f: &FnInfo) -> Vec<LockSite> {
    let (a, b) = f.body;
    let b = b.min(t.len().saturating_sub(1));
    let mut out = Vec::new();
    for i in a..=b {
        let tok = &t[i];
        let is_acq = tok.kind == TokKind::Ident
            && matches!(tok.text.as_str(), "lock" | "read" | "write")
            && i > 0
            && t[i - 1].is_punct('.')
            && t.get(i + 1).is_some_and(|x| x.is_punct('('))
            && t.get(i + 2).is_some_and(|x| x.is_punct(')'));
        if !is_acq {
            continue;
        }
        // Resource: the ident right before the dot (skip a `self .`
        // prefix so `self.view.read()` names `view`).
        let resource = if i >= 2 && t[i - 2].kind == TokKind::Ident && t[i - 2].text != "self" {
            t[i - 2].text.clone()
        } else if i >= 2 && t[i - 2].is_punct(')') {
            // `shard(key).map.read()` style has the field before `)` —
            // too dynamic; fall back to the method chain's last ident.
            match (a..i).rev().find(|&k| t[k].kind == TokKind::Ident) {
                Some(k) => t[k].text.clone(),
                None => continue,
            }
        } else {
            continue;
        };
        // Is the guard bound with `let NAME = ...`? Walk back to the
        // start of the statement.
        let stmt_start = (a..i)
            .rev()
            .find(|&k| t[k].is_punct(';') || t[k].is_punct('{') || t[k].is_punct('}'))
            .map_or(a, |k| k + 1);
        // A chained call on the lock result (`.read().place_at(..)`)
        // means the guard is a temporary even under a `let` — the
        // binding captures the chained value, and the guard dies at the
        // end of the statement.
        let chained = t.get(i + 3).is_some_and(|x| x.is_punct('.'));
        let bound_name = (!chained && t.get(stmt_start).is_some_and(|x| x.is_ident("let")))
            .then(|| {
                (stmt_start + 1..i)
                    .map(|k| &t[k])
                    .find(|x| x.kind == TokKind::Ident && x.text != "mut")
                    .map(|x| x.text.clone())
            })
            .flatten();
        let live_until = match bound_name {
            Some(name) => {
                // Guard lives to the enclosing block's end or an
                // explicit `drop(name)`.
                let mut depth = 0i32;
                let mut end = b;
                for (k, tk) in t.iter().enumerate().take(b + 1).skip(i) {
                    if tk.is_punct('{') {
                        depth += 1;
                    } else if tk.is_punct('}') {
                        depth -= 1;
                        if depth < 0 {
                            end = k;
                            break;
                        }
                    } else if tk.is_ident("drop")
                        && t.get(k + 1).is_some_and(|x| x.is_punct('('))
                        && t.get(k + 2).is_some_and(|x| x.is_ident(&name))
                    {
                        end = k;
                        break;
                    }
                }
                end
            }
            None => {
                // Temporary guard: dead at the next `;` at depth 0,
                // else at the end of the enclosing block.
                let mut depth = 0i32;
                let mut end = b;
                for (k, tk) in t.iter().enumerate().take(b + 1).skip(i) {
                    if tk.is_punct('{') || tk.is_punct('(') {
                        depth += 1;
                    } else if tk.is_punct('}') || tk.is_punct(')') {
                        depth -= 1;
                        if depth < 0 {
                            end = k;
                            break;
                        }
                    } else if depth <= 0 && tk.is_punct(';') {
                        end = k;
                        break;
                    }
                }
                end
            }
        };
        out.push(LockSite {
            resource,
            at: i,
            line: tok.line,
            live_until,
        });
    }
    out
}

fn d4_lock_discipline(units: &[Unit], out: &mut Vec<Finding>) {
    let g = build_graph(units);
    // Per-fn direct facts.
    struct FnFacts {
        sites: Vec<LockSite>,
        /// (caller site token idx, callee qual)
        calls: Vec<(usize, String)>,
        is_retry_point: bool,
    }
    let mut facts: BTreeMap<&str, FnFacts> = BTreeMap::new();
    for (q, (ui, f)) in &g.fns {
        let u = &units[*ui];
        let t = &u.lexed.tokens;
        let sites = lock_sites(t, f);
        // Call sites with token positions (subset of `callees` logic,
        // position-aware).
        let mut calls = Vec::new();
        let (a, b) = f.body;
        let aliases = local_aliases(t, f);
        for i in a..=b.min(t.len().saturating_sub(1)) {
            let tok = &t[i];
            if tok.kind != TokKind::Ident || !t.get(i + 1).is_some_and(|x| x.is_punct('(')) {
                continue;
            }
            let name = tok.text.as_str();
            if D4_RETRY_POINTS.contains(&name) {
                calls.push((i, format!("<retry:{name}>")));
                continue;
            }
            for k in resolve_call(&g, t, i, f, &aliases) {
                calls.push((i, k.to_string()));
            }
        }
        facts.insert(
            q,
            FnFacts {
                sites,
                calls,
                is_retry_point: D4_RETRY_POINTS.contains(&f.name.as_str()),
            },
        );
    }
    // Fixpoint 1: trans_locks[q] = locks acquired anywhere under q.
    let mut trans_locks: BTreeMap<&str, BTreeSet<String>> = facts
        .iter()
        .map(|(q, f)| {
            (
                *q,
                f.sites
                    .iter()
                    .map(|s| s.resource.clone())
                    .collect::<BTreeSet<_>>(),
            )
        })
        .collect();
    loop {
        let mut changed = false;
        let quals: Vec<&str> = facts.keys().copied().collect();
        for q in &quals {
            let callee_locks: Vec<String> = facts[q]
                .calls
                .iter()
                .filter_map(|(_, c)| trans_locks.get(c.as_str()))
                .flat_map(|s| s.iter().cloned())
                .collect();
            let set = trans_locks.get_mut(q).unwrap();
            for l in callee_locks {
                changed |= set.insert(l);
            }
        }
        if !changed {
            break;
        }
    }
    // Fixpoint 2: reaches_retry[q] = a retry point is reachable from q.
    let mut reaches_retry: BTreeSet<&str> = facts
        .iter()
        .filter(|(_, f)| f.is_retry_point || f.calls.iter().any(|(_, c)| c.starts_with("<retry:")))
        .map(|(q, _)| *q)
        .collect();
    loop {
        let mut changed = false;
        let quals: Vec<&str> = facts.keys().copied().collect();
        for q in &quals {
            if reaches_retry.contains(q) {
                continue;
            }
            if facts[q]
                .calls
                .iter()
                .any(|(_, c)| reaches_retry.contains(c.as_str()))
            {
                reaches_retry.insert(q);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    // Edges: resource A -> resource B when B is acquired (directly or
    // transitively via a call) while A's guard is live.
    let mut edges: BTreeMap<(String, String), (String, u32)> = BTreeMap::new();
    for (q, f) in &facts {
        let (ui, info) = g.fns[q];
        let u = &units[ui];
        for s in &f.sites {
            // Direct nesting.
            for s2 in &f.sites {
                if s2.at > s.at && s2.at <= s.live_until && s2.resource != s.resource {
                    edges
                        .entry((s.resource.clone(), s2.resource.clone()))
                        .or_insert_with(|| (q.to_string(), s2.line));
                }
            }
            // Via calls made while the guard is live.
            for (ci, callee) in &f.calls {
                if *ci <= s.at || *ci > s.live_until {
                    continue;
                }
                // Held across a retry/fault-injection point?
                if callee.starts_with("<retry:") || reaches_retry.contains(callee.as_str()) {
                    let line = u.lexed.tokens[*ci].line;
                    out.push(Finding {
                        rule: "D4",
                        file: u.path.clone(),
                        line,
                        key: format!(
                            "D4 {} {} lock-across-retry {} {}",
                            u.path,
                            info.qual,
                            s.resource,
                            callee.trim_start_matches("<retry:").trim_end_matches('>')
                        ),
                        message: format!(
                            "lock `{}` held across retry/fault-injection point `{}` in {} — \
                             backoff sleeps while holding the lock",
                            s.resource,
                            callee.trim_start_matches("<retry:").trim_end_matches('>'),
                            info.qual
                        ),
                    });
                }
                if let Some(locks) = trans_locks.get(callee.as_str()) {
                    for l in locks {
                        if *l != s.resource {
                            edges
                                .entry((s.resource.clone(), l.clone()))
                                .or_insert_with(|| (q.to_string(), u.lexed.tokens[*ci].line));
                        }
                    }
                }
            }
        }
    }
    // Cycle detection over the resource graph (DFS).
    let nodes: BTreeSet<&String> = edges.keys().flat_map(|(a, b)| [a, b]).collect();
    let adj: BTreeMap<&String, Vec<&String>> = nodes
        .iter()
        .map(|n| {
            (
                *n,
                edges
                    .keys()
                    .filter(|(a, _)| a == *n)
                    .map(|(_, b)| b)
                    .collect(),
            )
        })
        .collect();
    let mut reported: BTreeSet<String> = BTreeSet::new();
    for start in &nodes {
        // Find a cycle through `start` with a simple DFS.
        let mut stack = vec![(*start, vec![(*start).clone()])];
        let mut visited: BTreeSet<&String> = BTreeSet::new();
        while let Some((n, path)) = stack.pop() {
            for m in adj.get(n).into_iter().flatten() {
                if *m == *start && path.len() > 1 {
                    let mut cyc = path.clone();
                    // Canonicalise: rotate so the smallest name leads.
                    let min = cyc.iter().min().unwrap().clone();
                    while cyc[0] != min {
                        cyc.rotate_left(1);
                    }
                    let cyc_key = cyc.join("->");
                    if reported.insert(cyc_key.clone()) {
                        // Attribute the report to the edge that closes
                        // the cycle back to `start`.
                        let (in_fn, line) = edges[&(n.clone(), (*start).clone())].clone();
                        let (ui, _) = g.fns[in_fn.as_str()];
                        out.push(Finding {
                            rule: "D4",
                            file: units[ui].path.clone(),
                            line,
                            key: format!("D4 {} lock-cycle {}", units[ui].path, cyc_key),
                            message: format!(
                                "lock-order cycle {cyc_key} (edge closed in {in_fn}); \
                                 establish a single acquisition order"
                            ),
                        });
                    }
                } else if visited.insert(m) {
                    let mut p = path.clone();
                    p.push((*m).clone());
                    stack.push((m, p));
                }
            }
        }
    }
}

// ---------------------------------------------------------------- D5

/// Files D5 scans: workspace `src/` code, minus the layers that *are*
/// the discipline's machinery — the cfg-switched sync facades
/// (`sync.rs`), the model checker (which implements the instrumented
/// primitives on raw std atomics), and the analyzer itself (whose
/// matchers name these tokens).
fn d5_scoped(path: &str) -> bool {
    path.starts_with("crates/")
        && path.contains("/src/")
        && !path.starts_with("crates/modelcheck/")
        && !path.starts_with("crates/analyzer/")
        && !path.ends_with("/sync.rs")
}

/// Crates routed through the `ech_core::sync` facade: raw `std::sync`
/// primitives here would silently escape model-checker instrumentation.
fn d5_facade_scoped(path: &str) -> bool {
    (path.starts_with("crates/core/src/") || path.starts_with("crates/cluster/src/"))
        && !path.ends_with("/sync.rs")
}

/// `std::sync` items that have a facade equivalent and are therefore
/// banned raw in facade-scoped crates (`Arc`/`mpsc` have none and stay
/// legal).
const D5_RAW_SYNC: &[&str] = &["atomic", "Mutex", "RwLock", "Condvar"];

/// Token index of the `(` opening the innermost call that contains
/// token `i`, scanning back no further than `a`.
fn enclosing_call_open(t: &[Token], a: usize, i: usize) -> Option<usize> {
    let mut depth = 0usize;
    for k in (a..i).rev() {
        if t[k].is_punct(')') {
            depth += 1;
        } else if t[k].is_punct('(') {
            if depth == 0 {
                return Some(k);
            }
            depth -= 1;
        }
    }
    None
}

/// Names bound to atomics constructed via the facade's counter helpers
/// (`counter_u64` / `counter_observed_u64`), workspace-wide: struct
/// fields (`hits: counter_u64(0)`) and locals (`let done =
/// counter_u64(0)`). The *constructor* declares the atomic's role, so
/// the classification survives renames and cross-file access — a
/// counter's `load` in one file no longer needs a `fetch_add` in the
/// same file to be recognised.
fn counter_bindings(units: &[Unit]) -> BTreeSet<&str> {
    let mut counters = BTreeSet::new();
    for u in units {
        let t = &u.lexed.tokens;
        for (i, tok) in t.iter().enumerate() {
            if tok.kind == TokKind::Ident
                && matches!(tok.text.as_str(), "counter_u64" | "counter_observed_u64")
                && t.get(i + 1).is_some_and(|x| x.is_punct('('))
                && i >= 2
                && t[i - 2].kind == TokKind::Ident
            {
                // `name: counter_u64(..)` in a struct literal (a second
                // `:` would make it a path) or `name = counter_u64(..)`.
                let is_field = t[i - 1].is_punct(':') && !(i >= 3 && t[i - 3].is_punct(':'));
                let is_binding = t[i - 1].is_punct('=');
                if is_field || is_binding {
                    counters.insert(t[i - 2].text.as_str());
                }
            }
        }
    }
    counters
}

/// D5: atomic-ordering discipline.
///
/// `Ordering::Relaxed` is the *counter* ordering: legal on
/// `fetch_add`/`fetch_sub`, and on a `load`/`store` whose receiver was
/// constructed via the sync facade's counter helpers ([`counter_bindings`])
/// — the declared constructor, not per-file name pairing, decides what
/// is a counter. Anywhere else a relaxed access on an atomic that other
/// threads order against is a publication bug waiting to happen — use
/// Acquire/Release, or justify with `ech-allow(D5)`.
///
/// Separately, facade-scoped crates must take their primitives from the
/// `sync` facade: a raw `std::sync::{atomic, Mutex, RwLock, Condvar}`
/// path bypasses the model checker's instrumentation.
fn d5_atomic_discipline(units: &[Unit], out: &mut Vec<Finding>) {
    let counters = counter_bindings(units);
    for u in units.iter().filter(|u| d5_scoped(&u.path)) {
        let t = &u.lexed.tokens;
        let test_ranges: Vec<(usize, usize)> = u
            .parsed
            .fns
            .iter()
            .filter(|f| f.is_test)
            .map(|f| f.body)
            .collect();
        let in_test = |i: usize| test_ranges.iter().any(|&(a, b)| i >= a && i <= b);
        for (i, tok) in t.iter().enumerate() {
            if !tok.is_ident("Relaxed")
                || i < 3
                || !t[i - 1].is_punct(':')
                || !t[i - 2].is_punct(':')
                || !t[i - 3].is_ident("Ordering")
                || in_test(i)
            {
                continue;
            }
            let f = enclosing_fn(&u.parsed, i);
            let scan_from = f.map_or(0, |f| f.body.0);
            let method = enclosing_call_open(t, scan_from, i)
                .filter(|&open| open >= 1 && t[open - 1].kind == TokKind::Ident)
                .map(|open| (open, t[open - 1].text.clone()));
            let allowed = match &method {
                Some((_, m)) if m == "fetch_add" || m == "fetch_sub" => true,
                Some((open, m)) if m == "load" || m == "store" => {
                    // `<recv>.load/store(.., Ordering::Relaxed)` —
                    // legal when the receiver is a declared counter
                    // (snapshot reads and counter resets).
                    *open >= 3
                        && t[open - 2].is_punct('.')
                        && t[open - 3].kind == TokKind::Ident
                        && counters.contains(t[open - 3].text.as_str())
                }
                _ => false,
            };
            if allowed {
                continue;
            }
            let what = method.map_or_else(|| "<expr>".to_string(), |(_, m)| m);
            let ctx = f.map_or_else(|| "<item>".to_string(), |f| f.qual.clone());
            out.push(Finding {
                rule: "D5",
                file: u.path.clone(),
                line: tok.line,
                key: format!("D5 {} {} relaxed-{}", u.path, ctx, what),
                message: format!(
                    "`Ordering::Relaxed` on `{what}` outside the counter discipline ({ctx}); \
                     non-counter atomics synchronise — use Acquire/Release orderings"
                ),
            });
        }
        if !d5_facade_scoped(&u.path) {
            continue;
        }
        for (i, tok) in t.iter().enumerate() {
            if !tok.is_ident("std")
                || !t.get(i + 1).is_some_and(|x| x.is_punct(':'))
                || !t.get(i + 2).is_some_and(|x| x.is_punct(':'))
                || !t.get(i + 3).is_some_and(|x| x.is_ident("sync"))
                || !t.get(i + 4).is_some_and(|x| x.is_punct(':'))
                || !t.get(i + 5).is_some_and(|x| x.is_punct(':'))
                || in_test(i)
            {
                continue;
            }
            // `std::sync::<item>` or a `std::sync::{..}` group: collect
            // the banned item names referenced.
            let mut hits: Vec<&str> = Vec::new();
            match t.get(i + 6) {
                Some(x) if x.kind == TokKind::Ident => {
                    if let Some(h) = D5_RAW_SYNC.iter().find(|b| x.is_ident(b)) {
                        hits.push(h);
                    }
                }
                Some(x) if x.is_punct('{') => {
                    let close = matching_brace(t, i + 6);
                    for tk in &t[i + 7..close] {
                        if let Some(h) = D5_RAW_SYNC.iter().find(|b| tk.is_ident(b)) {
                            hits.push(h);
                        }
                    }
                }
                _ => {}
            }
            let ctx =
                enclosing_fn(&u.parsed, i).map_or_else(|| "<item>".to_string(), |f| f.qual.clone());
            for h in hits {
                out.push(Finding {
                    rule: "D5",
                    file: u.path.clone(),
                    line: tok.line,
                    key: format!("D5 {} {} raw-std-sync {}", u.path, ctx, h),
                    message: format!(
                        "raw `std::sync::{h}` in facade-scoped code ({ctx}); import from the \
                         crate's `sync` module so the model checker can instrument it"
                    ),
                });
            }
        }
    }
}

// ---------------------------------------------------------------- D6

/// Header-stamp calls: these make a write version *authoritative* for
/// readers resolving the stamped object.
const D6_STAMP: &[&str] = &["record_write", "mark_clean", "restamp"];

/// D6: publish-order discipline on writer paths.
///
/// Two invariants around the RCU view swap:
///
/// 1. **stamp-before-publish** — a function (or anything it calls) must
///    not stamp an object header *before* it publishes the view that
///    makes the stamped version resolvable: a concurrent reader would
///    see a header version no replica placement can satisfy yet.
///    Stamping and publishing are both propagated transitively through
///    the call graph, so hiding the pair in helpers doesn't evade the
///    rule.
/// 2. **unpinned-cache-consult** — every `cache.place_at`/
///    `cache.place_current` consult must happen under a pinned view
///    epoch (a `load()` on an `ArcSwap` field or a `view_snapshot()`
///    earlier in, or inside, the consulting expression); consulting the
///    cache against an unpinned view races the next publication.
///
/// Publication and pin points are derived from the *declared field
/// type*: any `store`/`swap` (`load` for pins) whose receiver resolves
/// to a field wrapped in the facade's RCU primitive (`ArcSwap<..>`)
/// counts, whatever the field or helper is called — renaming `view` or
/// adding a second publication path needs no rule edit.
fn d6_publish_order(units: &[Unit], out: &mut Vec<Finding>) {
    let g = build_graph(units);
    // Direct event positions per fn: (token idx, event name).
    struct Events {
        stamps: Vec<(usize, String)>,
        publishes: Vec<usize>,
        calls: Vec<(usize, String)>,
    }
    let mut events: BTreeMap<&str, Events> = BTreeMap::new();
    for (q, (ui, f)) in &g.fns {
        let t = &units[*ui].lexed.tokens;
        let (a, b) = f.body;
        let b = b.min(t.len().saturating_sub(1));
        let aliases = local_aliases(t, f);
        let mut e = Events {
            stamps: Vec::new(),
            publishes: Vec::new(),
            calls: Vec::new(),
        };
        for i in a..=b {
            let tok = &t[i];
            if tok.kind != TokKind::Ident || !t.get(i + 1).is_some_and(|x| x.is_punct('(')) {
                continue;
            }
            let name = tok.text.as_str();
            if D6_STAMP.contains(&name) && i > 0 && t[i - 1].is_punct('.') {
                e.stamps.push((i, name.to_string()));
                continue;
            }
            // A view publication: `store`/`swap` on a field declared
            // with the RCU publication type (`ArcSwap<..>`). Helpers
            // that publish internally (e.g. a clone-mutate-publish
            // wrapper) need no special-casing — they become publish
            // points through the call-graph fixpoint below.
            if (name == "store" || name == "swap") && arcswap_receiver(&g, f, t, i, &aliases) {
                e.publishes.push(i);
                continue;
            }
            // Resolved calls, for transitive propagation.
            for k in resolve_call(&g, t, i, f, &aliases) {
                e.calls.push((i, k.to_string()));
            }
        }
        events.insert(q, e);
    }
    // Fixpoints: fns that stamp / publish anywhere beneath them.
    let mut stamp_fns: BTreeSet<&str> = events
        .iter()
        .filter(|(_, e)| !e.stamps.is_empty())
        .map(|(q, _)| *q)
        .collect();
    let mut publish_fns: BTreeSet<&str> = events
        .iter()
        .filter(|(_, e)| !e.publishes.is_empty())
        .map(|(q, _)| *q)
        .collect();
    loop {
        let mut changed = false;
        for (q, e) in &events {
            let calls_stamp = e.calls.iter().any(|(_, c)| stamp_fns.contains(c.as_str()));
            if calls_stamp && stamp_fns.insert(q) {
                changed = true;
            }
            let calls_publish = e
                .calls
                .iter()
                .any(|(_, c)| publish_fns.contains(c.as_str()));
            if calls_publish && publish_fns.insert(q) {
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    for (q, e) in &events {
        let (ui, f) = g.fns[q];
        let u = &units[ui];
        if !u.path.starts_with("crates/cluster/src/") && !u.path.starts_with("crates/core/src/") {
            continue;
        }
        let t = &u.lexed.tokens;
        // All stamp/publish event positions, direct and via calls. A
        // call that both stamps and publishes internally is not an
        // ordered pair here — its internal order is checked at its own
        // definition.
        let mut stamps: Vec<(usize, &str)> =
            e.stamps.iter().map(|(i, n)| (*i, n.as_str())).collect();
        let mut publishes: Vec<usize> = e.publishes.clone();
        for (i, c) in &e.calls {
            let is_stamp = stamp_fns.contains(c.as_str());
            let is_publish = publish_fns.contains(c.as_str());
            if is_stamp && !is_publish {
                stamps.push((*i, c.rsplit("::").next().unwrap_or(c)));
            } else if is_publish && !is_stamp {
                publishes.push(*i);
            }
        }
        for (si, name) in &stamps {
            if publishes.iter().any(|pi| pi > si) {
                out.push(Finding {
                    rule: "D6",
                    file: u.path.clone(),
                    line: t[*si].line,
                    key: format!("D6 {} {} stamp-before-publish {}", u.path, f.qual, name),
                    message: format!(
                        "header stamp `{name}` before the view publication in {} — a reader \
                         between the two sees a header version no placement satisfies; \
                         publish the view first",
                        f.qual
                    ),
                });
            }
        }
        // Unpinned cache consults: `cache.place_*` with no view pin
        // before the consulting expression completes. A pin is a
        // `load()` on an `ArcSwap`-typed field or the snapshot helper.
        let aliases = local_aliases(t, f);
        let pins: Vec<usize> = (f.body.0..=f.body.1.min(t.len().saturating_sub(1)))
            .filter(|&i| {
                let tok = &t[i];
                if !t.get(i + 1).is_some_and(|x| x.is_punct('(')) {
                    return false;
                }
                (tok.is_ident("load") && arcswap_receiver(&g, f, t, i, &aliases))
                    || tok.is_ident("view_snapshot")
            })
            .collect();
        for i in f.body.0..=f.body.1.min(t.len().saturating_sub(1)) {
            let tok = &t[i];
            let is_consult = tok.kind == TokKind::Ident
                && matches!(tok.text.as_str(), "place_at" | "place_current")
                && i >= 2
                && t[i - 1].is_punct('.')
                && t[i - 2].is_ident("cache")
                && t.get(i + 1).is_some_and(|x| x.is_punct('('));
            if !is_consult {
                continue;
            }
            // The pin may sit inside the consult's own argument list
            // (`cache.place_current(&self.view.load(), ..)`), so the
            // window closes at the call's closing paren.
            let close = matching_paren(t, i + 1);
            if !pins.iter().any(|&p| p < close) {
                out.push(Finding {
                    rule: "D6",
                    file: u.path.clone(),
                    line: tok.line,
                    key: format!(
                        "D6 {} {} unpinned-cache-consult {}",
                        u.path, f.qual, tok.text
                    ),
                    message: format!(
                        "`cache.{}` without a pinned view epoch in {} — load the view once \
                         and consult the cache against that snapshot",
                        tok.text, f.qual
                    ),
                });
            }
        }
    }
}

// ---------------------------------------------------------------- D7

/// The message choke point: every data-path node I/O crosses it so the
/// per-replica breaker, the network fault fabric and the model checker's
/// message scheduler see the whole conversation.
const D7_CHOKE: &str = "Cluster::rpc";

/// The node type whose I/O surface must stay fabric-visible.
const D7_NODE: &str = "StorageNode";

/// StorageNode I/O methods that carry data-plane messages.
const D7_NODE_IO: &[&str] = &["put", "get", "remove", "restamp"];

/// D7: RPC choke-point discipline.
///
/// Any [`D7_NODE_IO`] call in the data-path call graph (the same
/// reachable set D2 scans) must be issued *through* [`D7_CHOKE`]: the
/// op closure handed to `rpc(..)` is the sanctioned direct call, and
/// its argument span is masked. A node I/O call outside that span
/// bypasses the breaker, the fault fabric and the message scheduler —
/// faults stop being injected, health stops being tracked, and the
/// model checker silently loses a message it believes it controls.
///
/// Targets resolve with the same receiver-typed machinery as D2/D4
/// (declared fields, helper return types, aliases, unique bare names);
/// an unresolvable receiver produces no finding, which is the
/// under-approximation documented in DESIGN.md §9. Reconciliation sends
/// that are *deliberately* fabric-exempt (reliable-queue removes and
/// restamps, DESIGN §8) carry `ech-allow(D7)` with a reason.
fn d7_rpc_choke_point(units: &[Unit], out: &mut Vec<Finding>) {
    let g = build_graph(units);
    let reach = d2_reachable(units, &g);
    for q in &reach {
        if *q == D7_CHOKE {
            continue;
        }
        let (ui, f) = g.fns[q];
        let u = &units[ui];
        // The discipline governs the coordinator's rpc plane; StorageNode
        // itself is the callee side of the choke point, and crates below
        // the cluster never hold a node handle.
        if !u.path.starts_with("crates/cluster/src/") || f.owner.as_deref() == Some(D7_NODE) {
            continue;
        }
        let t = &u.lexed.tokens;
        let (a, b) = f.body;
        let b = b.min(t.len().saturating_sub(1));
        let aliases = local_aliases(t, f);
        // Mask every `rpc(..)` argument span: the op closure inside it
        // is how the choke point is *used*.
        let masked: Vec<(usize, usize)> = (a..=b)
            .filter(|&i| t[i].is_ident("rpc") && t.get(i + 1).is_some_and(|x| x.is_punct('(')))
            .map(|i| (i + 1, matching_paren(t, i + 1)))
            .collect();
        for i in a..=b {
            let tok = &t[i];
            if tok.kind != TokKind::Ident
                || !D7_NODE_IO.contains(&tok.text.as_str())
                || i == 0
                || !t[i - 1].is_punct('.')
                || !t.get(i + 1).is_some_and(|x| x.is_punct('('))
                || masked.iter().any(|&(s, e)| i > s && i < e)
            {
                continue;
            }
            let want = format!("{D7_NODE}::{}", tok.text);
            if resolve_call(&g, t, i, f, &aliases)
                .iter()
                .any(|k| **k == want)
            {
                out.push(Finding {
                    rule: "D7",
                    file: u.path.clone(),
                    line: tok.line,
                    key: format!("D7 {} {} direct-node-{}", u.path, f.qual, tok.text),
                    message: format!(
                        "direct `StorageNode::{}` call in {} bypasses the `Cluster::rpc` \
                         choke point — the breaker, the fault fabric and the message \
                         scheduler never see this send; route it through rpc, or justify \
                         the reconciliation bypass with ech-allow(D7)",
                        tok.text, f.qual
                    ),
                });
            }
        }
    }
}

// ---------------------------------------------------------------- D8

/// Deadline-less retry runners: banned wherever an rpc send is in
/// reach. Every lost message burns the plan's rpc timeout on the clock,
/// so a retry loop that never consults a [`Deadline`] can stall a
/// client operation indefinitely against a dark fabric.
const D8_UNBOUNDED_RUNNERS: &[&str] = &["run", "run_with", "run_counted", "run_counted_with"];

/// D8: deadline-propagation exhaustiveness.
///
/// Three checks over the data-path call graph (the D2 reachable set):
///
/// 1. **missing-deadline** — a function that *directly* issues
///    `.rpc(..)` sends must hold an operation budget: either a
///    `Deadline` parameter threaded by value from the entry point, or a
///    fresh `op_deadline()` minted at its own scope boundary. A sender
///    with neither has unbounded exposure to rpc-timeout burns.
/// 2. **deadline-free-runner** — anywhere rpc is reachable, the retry
///    facade must be entered through its `*_deadline` runners; the
///    legacy [`D8_UNBOUNDED_RUNNERS`] never consult a budget between
///    backoffs.
/// 3. **fresh-unbounded-deadline** — minting `Deadline::unbounded()` in
///    rpc-reaching code launders an infinite budget into the plumbing
///    that exists to bound it (config-driven `None` budgets flow through
///    `Deadline::from_config`, which is the sanctioned spelling).
fn d8_deadline_propagation(units: &[Unit], out: &mut Vec<Finding>) {
    let g = build_graph(units);
    let reach = d2_reachable(units, &g);
    // Direct rpc senders: fns whose own body invokes `.rpc(..)`.
    let mut direct: BTreeSet<&str> = BTreeSet::new();
    for (q, (ui, f)) in &g.fns {
        let t = &units[*ui].lexed.tokens;
        let (a, b) = f.body;
        for i in a..=b.min(t.len().saturating_sub(1)) {
            if t[i].is_ident("rpc")
                && i > 0
                && t[i - 1].is_punct('.')
                && t.get(i + 1).is_some_and(|x| x.is_punct('('))
            {
                direct.insert(q);
                break;
            }
        }
    }
    // Transitive closure: fns from which an rpc send is reachable.
    let calls: BTreeMap<&str, Vec<&str>> = g
        .fns
        .iter()
        .map(|(q, (ui, f))| (*q, callees(units, &g, *ui, f)))
        .collect();
    let mut reaches_rpc: BTreeSet<&str> = direct.clone();
    loop {
        let mut changed = false;
        for (q, cs) in &calls {
            if !reaches_rpc.contains(q) && cs.iter().any(|c| reaches_rpc.contains(c)) {
                reaches_rpc.insert(q);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    for q in &reach {
        if *q == D7_CHOKE || !reaches_rpc.contains(q) {
            continue;
        }
        let (ui, f) = g.fns[q];
        let u = &units[ui];
        if !u.path.starts_with("crates/cluster/src/") {
            continue;
        }
        let t = &u.lexed.tokens;
        let (a, b) = f.body;
        let b = b.min(t.len().saturating_sub(1));
        if direct.contains(q) {
            let sig_has_deadline =
                (f.decl..a).any(|i| t.get(i).is_some_and(|x| x.is_ident("Deadline")));
            let mints_deadline = (a..=b).any(|i| {
                t[i].is_ident("op_deadline") && t.get(i + 1).is_some_and(|x| x.is_punct('('))
            });
            if !sig_has_deadline && !mints_deadline {
                out.push(Finding {
                    rule: "D8",
                    file: u.path.clone(),
                    line: f.line,
                    key: format!("D8 {} {} missing-deadline", u.path, f.qual),
                    message: format!(
                        "{} issues rpc sends with no operation budget — accept a \
                         `Deadline` parameter by value or mint `op_deadline()` at the \
                         operation boundary, so lost-message timeout burns stay bounded",
                        f.qual
                    ),
                });
            }
        }
        for i in a..=b {
            let tok = &t[i];
            if tok.kind != TokKind::Ident {
                continue;
            }
            if D8_UNBOUNDED_RUNNERS.contains(&tok.text.as_str())
                && i > 0
                && t[i - 1].is_punct('.')
                && t.get(i + 1).is_some_and(|x| x.is_punct('('))
            {
                out.push(Finding {
                    rule: "D8",
                    file: u.path.clone(),
                    line: tok.line,
                    key: format!("D8 {} {} deadline-free-runner {}", u.path, f.qual, tok.text),
                    message: format!(
                        "retry runner `.{}(..)` in rpc-reaching code ({}) never consults \
                         a deadline between backoffs; use the `*_deadline` runner and \
                         thread the operation's budget",
                        tok.text, f.qual
                    ),
                });
            }
            if tok.is_ident("Deadline")
                && t.get(i + 1).is_some_and(|x| x.is_punct(':'))
                && t.get(i + 2).is_some_and(|x| x.is_punct(':'))
                && t.get(i + 3).is_some_and(|x| x.is_ident("unbounded"))
            {
                out.push(Finding {
                    rule: "D8",
                    file: u.path.clone(),
                    line: tok.line,
                    key: format!("D8 {} {} fresh-unbounded-deadline", u.path, f.qual),
                    message: format!(
                        "`Deadline::unbounded()` minted in rpc-reaching code ({}) — \
                         unbounded budgets must come from configuration via \
                         `Deadline::from_config`, not be constructed on the data path",
                        f.qual
                    ),
                });
            }
        }
    }
}

/// Is the method call at token `i` received by a field of `f`'s owner
/// struct whose declared type descends through `ArcSwap` — the facade's
/// RCU publication primitive? Resolves `self.<field>.<m>(..)` directly
/// or through a let-bound alias.
fn arcswap_receiver(
    g: &Graph<'_>,
    f: &FnInfo,
    t: &[Token],
    i: usize,
    aliases: &BTreeMap<String, String>,
) -> bool {
    let Some(owner) = f.owner.as_deref() else {
        return false;
    };
    receiver_field(t, i, aliases).is_some_and(|field| {
        g.wrapped
            .get(&(owner, field.as_str()))
            .is_some_and(|chain| chain.iter().any(|w| w == "ArcSwap"))
    })
}

/// Token index of the `)` matching the `(` at `open`.
fn matching_paren(t: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    for (i, tok) in t.iter().enumerate().skip(open) {
        if tok.is_punct('(') {
            depth += 1;
        } else if tok.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
    }
    t.len().saturating_sub(1)
}

// ---------------------------------------------------------------- D9

/// The model-checker's scenario table: the one file D9 scans.
const D9_MODELS: &str = "crates/cli/src/mc_models.rs";

/// One `Model { .. }` literal lifted out of the table's raw text.
struct D9Model {
    name: String,
    pair: Option<String>,
    /// Any `expect_failure*` flag set — the entry is a seeded mutant.
    mutant: bool,
    /// 1-based line of the literal's `name:` field.
    line: u32,
}

/// Extract the string value of `field: "…"` from a model-literal
/// block, plus the byte offset of the opening quote.
fn d9_field<'a>(block: &'a str, field: &str) -> Option<(&'a str, usize)> {
    let needle = format!("{field}: \"");
    let at = block.find(&needle)?;
    let start = at + needle.len();
    let len = block[start..].find('"')?;
    Some((&block[start..start + len], start))
}

/// Parse every `Model { .. }` literal out of the table's raw text.
/// Blocks are delimited by successive `Model {` occurrences; anything
/// without a `name: "…"` field (the struct declaration, doc prose) is
/// skipped.
fn d9_parse_models(text: &str) -> Vec<D9Model> {
    let starts: Vec<usize> = {
        let mut v = Vec::new();
        let mut from = 0usize;
        while let Some(i) = text[from..].find("Model {") {
            v.push(from + i);
            from += i + 1;
        }
        v
    };
    let mut models = Vec::new();
    for (k, &s) in starts.iter().enumerate() {
        let end = starts.get(k + 1).copied().unwrap_or(text.len());
        let block = &text[s..end];
        let Some((name, name_off)) = d9_field(block, "name") else {
            continue;
        };
        let mutant = ["", "_weak", "_msg", "_lincheck"]
            .iter()
            .any(|sfx| block.contains(&format!("expect_failure{sfx}: true")));
        let line = 1 + text[..s + name_off].matches('\n').count() as u32;
        models.push(D9Model {
            name: name.to_string(),
            pair: d9_field(block, "pair").map(|(p, _)| p.to_string()),
            mutant,
            line,
        });
    }
    models
}

/// D9: model/mutant pairing discipline.
///
/// Every entry in the scenario table must carry a `pair` naming its
/// role-opposed counterpart: a correct-protocol model points at the
/// seeded mutant that proves its property is *checkable* (delete the
/// assertion's teeth and the mutant's expected-caught run goes red),
/// and a mutant points back at the protocol it corrupts. Pairings need
/// not be unique — several models may share one mutant — but they must
/// resolve, must not be reflexive, and must cross roles. Additionally,
/// every mutant's name must be quoted somewhere else in the CLI
/// sources: that quote is the replay regression test pinning the
/// mutant's counterexample (a mutant nothing references is a seeded
/// bug nobody would notice going un-caught).
fn d9_model_pairing(units: &[Unit], out: &mut Vec<Finding>) {
    let Some(mu) = units.iter().find(|u| u.path == D9_MODELS) else {
        return;
    };
    let models = d9_parse_models(&mu.text);
    let roles: BTreeMap<&str, bool> = models.iter().map(|m| (m.name.as_str(), m.mutant)).collect();
    for m in &models {
        let role = if m.mutant { "mutant" } else { "model" };
        match m.pair.as_deref() {
            None => out.push(Finding {
                rule: "D9",
                file: mu.path.clone(),
                line: m.line,
                key: format!("D9 {} {} missing-pair", mu.path, m.name),
                message: format!(
                    "{role} `{}` declares no `pair` — every scenario names the \
                     role-opposed entry that keeps it honest (a model cites the \
                     mutant proving its property checkable; a mutant cites the \
                     protocol it corrupts)",
                    m.name
                ),
            }),
            Some(p) if p == m.name => out.push(Finding {
                rule: "D9",
                file: mu.path.clone(),
                line: m.line,
                key: format!("D9 {} {} self-pair", mu.path, m.name),
                message: format!(
                    "{role} `{}` pairs with itself — the pairing must cross roles \
                     to witness anything",
                    m.name
                ),
            }),
            Some(p) => match roles.get(p) {
                None => out.push(Finding {
                    rule: "D9",
                    file: mu.path.clone(),
                    line: m.line,
                    key: format!("D9 {} {} unknown-pair", mu.path, m.name),
                    message: format!(
                        "{role} `{}` pairs with `{p}`, which names no entry in the \
                         scenario table",
                        m.name
                    ),
                }),
                Some(&pm) if pm == m.mutant => out.push(Finding {
                    rule: "D9",
                    file: mu.path.clone(),
                    line: m.line,
                    key: format!("D9 {} {} role-mismatch", mu.path, m.name),
                    message: format!(
                        "{role} `{}` pairs with `{p}`, but both are {role}s — a \
                         pairing only proves something when a correct protocol \
                         faces the mutant that would break it",
                        m.name
                    ),
                }),
                Some(_) => {}
            },
        }
        if m.mutant {
            // The name may sit inside a larger literal (a scripted
            // `modelcheck --model <name>` command line), so this is a
            // substring scan; dash-separated names cannot collide with
            // identifiers.
            let referenced = units.iter().any(|u| {
                u.path != D9_MODELS
                    && u.path.starts_with("crates/cli/src/")
                    && u.text.contains(m.name.as_str())
            });
            if !referenced {
                out.push(Finding {
                    rule: "D9",
                    file: mu.path.clone(),
                    line: m.line,
                    key: format!("D9 {} {} unreferenced-mutant", mu.path, m.name),
                    message: format!(
                        "mutant `{}` is quoted nowhere else in crates/cli/src — \
                         add the expected-caught replay regression test that pins \
                         its counterexample",
                        m.name
                    ),
                });
            }
        }
    }
}
