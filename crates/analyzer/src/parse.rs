//! A lightweight item parser over the token stream.
//!
//! Not a grammar — a brace-depth walk that recognises the handful of
//! item shapes the rules need: `mod`/`impl`/`trait` scopes (with
//! `#[cfg(test)]`/`#[test]` detection), `fn` items with their body token
//! ranges, and `enum` items with their variant lists. Function bodies
//! are opaque to item discovery; the rules scan them token-wise.

use crate::lexer::{Lexed, TokKind, Token};

/// One parsed function item.
#[derive(Debug, Clone)]
pub struct FnInfo {
    /// Function name.
    pub name: String,
    /// Enclosing `impl`/`trait` type name, if any.
    pub owner: Option<String>,
    /// `Owner::name` when owned, else just the name.
    pub qual: String,
    /// Is this test code (`#[test]`, or inside a `#[cfg(test)]` scope)?
    pub is_test: bool,
    /// Token-index range of the body, **including** both braces.
    pub body: (usize, usize),
    /// Token index of the `fn` keyword — the signature spans
    /// `decl..body.0`, so rules can scan the declared parameter and
    /// return types (e.g. D8 checks for a `Deadline` parameter).
    pub decl: usize,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Base type of the declared return type, if any — wrapper types
    /// (`Result`, `Option`, `Arc`, references) stripped the same way
    /// struct-field types are, so one-hop receiver chains like
    /// `self.node(s)?.put(..)` can resolve `put` against the type the
    /// helper actually hands back.
    pub ret: Option<String>,
}

/// One parsed struct item with named fields.
///
/// Field types are reduced to their *base* type — smart-pointer and
/// lock wrappers (`Arc<Mutex<KvDirtyTable>>` → `KvDirtyTable`) are
/// stripped so the rules can resolve `self.<field>.<method>(..)` calls
/// against the type that actually defines the method. Container types
/// like `Vec` are kept as-is: methods on a `Vec` field belong to `Vec`,
/// not its element.
#[derive(Debug, Clone)]
pub struct StructInfo {
    /// Struct name.
    pub name: String,
    /// `(field name, base type)` pairs in declaration order.
    pub fields: Vec<(String, String)>,
    /// `(field name, wrapper chain outermost-first)` for fields whose
    /// declared type descended through [`TYPE_WRAPPERS`] generics —
    /// `view: ArcSwap<ClusterView>` records `("view", ["ArcSwap"])`.
    /// Unwrapped fields have no entry.
    pub wrapped: Vec<(String, Vec<String>)>,
}

/// One parsed enum item.
#[derive(Debug, Clone)]
pub struct EnumInfo {
    /// Enum name.
    pub name: String,
    /// Variant names in declaration order.
    pub variants: Vec<String>,
    /// Declared in test code?
    pub is_test: bool,
    /// 1-based line of the `enum` keyword.
    pub line: u32,
}

/// One parsed `impl` block.
#[derive(Debug, Clone)]
pub struct ImplInfo {
    /// Trait implemented (`impl Trait for Type`), if any.
    pub trait_name: Option<String>,
    /// The implementing type.
    pub type_name: String,
    /// Token-index range of the block body, including braces.
    pub body: (usize, usize),
}

/// Everything the rules need from one file.
#[derive(Debug, Default)]
pub struct ParsedFile {
    /// Functions (all nesting levels discoverable at item scope).
    pub fns: Vec<FnInfo>,
    /// Enums.
    pub enums: Vec<EnumInfo>,
    /// Structs with named fields.
    pub structs: Vec<StructInfo>,
    /// Impl blocks.
    pub impls: Vec<ImplInfo>,
}

#[derive(Debug, Clone)]
enum Scope {
    Mod { is_test: bool },
    Impl { type_name: String, is_test: bool },
    Other,
}

/// Find the token index of the `}` matching the `{` at `open`.
pub fn matching_brace(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    for (i, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
    }
    tokens.len().saturating_sub(1)
}

/// Last segment of a `::`-separated path starting at `i`; returns the
/// segment and the index just past the path.
fn path_last_segment(tokens: &[Token], mut i: usize) -> (Option<String>, usize) {
    let mut last = None;
    loop {
        // Skip a generic argument span.
        if tokens.get(i).is_some_and(|t| t.is_punct('<')) {
            let mut depth = 0i32;
            while i < tokens.len() {
                if tokens[i].is_punct('<') {
                    depth += 1;
                } else if tokens[i].is_punct('>') {
                    depth -= 1;
                    if depth <= 0 {
                        i += 1;
                        break;
                    }
                }
                i += 1;
            }
        }
        match tokens.get(i) {
            Some(t) if t.kind == TokKind::Ident => {
                last = Some(t.text.clone());
                i += 1;
            }
            _ => break,
        }
        if tokens.get(i).is_some_and(|t| t.is_punct(':'))
            && tokens.get(i + 1).is_some_and(|t| t.is_punct(':'))
        {
            i += 2;
        } else if tokens.get(i).is_some_and(|t| t.is_punct('<')) {
            // Trailing generics on the final segment: skip and stop.
            let mut depth = 0i32;
            while i < tokens.len() {
                if tokens[i].is_punct('<') {
                    depth += 1;
                } else if tokens[i].is_punct('>') {
                    depth -= 1;
                    if depth <= 0 {
                        i += 1;
                        break;
                    }
                }
                i += 1;
            }
            break;
        } else {
            break;
        }
    }
    (last, i)
}

/// Wrappers whose single generic argument is the type callers actually
/// invoke methods on (after `.lock()`/`.load()`/deref). `Vec` and maps
/// are deliberately absent: their methods are their own.
const TYPE_WRAPPERS: &[&str] = &[
    "Arc", "Rc", "Box", "Mutex", "RwLock", "RefCell", "Cell", "Option", "ArcSwap",
];

/// Wrappers additionally stripped from *return* types: callers invoke
/// methods on the success value after `?`/`unwrap`, so `Result` is
/// transparent there — while a `Result`-typed field's methods are
/// `Result`'s own.
const RET_WRAPPERS: &[&str] = &[
    "Arc", "Rc", "Box", "Mutex", "RwLock", "RefCell", "Cell", "Option", "ArcSwap", "Result",
];

/// Base type plus the wrapper chain descended through, outermost-first
/// (`Option<Mutex<T>>` → `(Some("T"), ["Option", "Mutex"])`).
fn base_type_in(t: &[Token], wrappers: &[&str]) -> (Option<String>, Vec<String>) {
    let mut chain = Vec::new();
    let mut k = 0usize;
    while k < t.len() {
        let tok = &t[k];
        if tok.kind == TokKind::Ident {
            if tok.is_ident("mut") || tok.is_ident("dyn") || tok.is_ident("impl") {
                k += 1;
                continue;
            }
            // Path prefix `std::sync::Arc<..>` — keep walking segments.
            if t.get(k + 1).is_some_and(|x| x.is_punct(':'))
                && t.get(k + 2).is_some_and(|x| x.is_punct(':'))
            {
                k += 3;
                continue;
            }
            // Wrapper with a generic argument: descend into it.
            if wrappers.contains(&tok.text.as_str())
                && t.get(k + 1).is_some_and(|x| x.is_punct('<'))
            {
                chain.push(tok.text.clone());
                k += 2;
                continue;
            }
            return (Some(tok.text.clone()), chain);
        }
        // References, lifetimes, stray angle brackets: skip.
        k += 1;
    }
    (None, chain)
}

/// Parse `{ name: Type, .. }` fields of a struct body (depth-1 walk,
/// attribute and `pub(..)` spans skipped). Returns the `(name, base)`
/// pairs plus the wrapper chains of fields that had any.
#[allow(clippy::type_complexity)]
fn struct_fields(
    t: &[Token],
    open: usize,
    close: usize,
) -> (Vec<(String, String)>, Vec<(String, Vec<String>)>) {
    let mut fields = Vec::new();
    let mut wrapped = Vec::new();
    let mut j = open + 1;
    while j < close {
        let x = &t[j];
        // Attribute span `#[...]`.
        if x.is_punct('#') && t.get(j + 1).is_some_and(|n| n.is_punct('[')) {
            let mut d = 0i32;
            let mut m = j + 1;
            while m < close {
                if t[m].is_punct('[') {
                    d += 1;
                } else if t[m].is_punct(']') {
                    d -= 1;
                    if d == 0 {
                        break;
                    }
                }
                m += 1;
            }
            j = m + 1;
            continue;
        }
        // Visibility: `pub` or `pub(crate)`.
        if x.is_ident("pub") {
            if t.get(j + 1).is_some_and(|n| n.is_punct('(')) {
                let mut d = 0i32;
                let mut m = j + 1;
                while m < close {
                    if t[m].is_punct('(') {
                        d += 1;
                    } else if t[m].is_punct(')') {
                        d -= 1;
                        if d == 0 {
                            break;
                        }
                    }
                    m += 1;
                }
                j = m + 1;
            } else {
                j += 1;
            }
            continue;
        }
        // Field: `name : Type` (a second `:` would be a path, not a field).
        if x.kind == TokKind::Ident
            && t.get(j + 1).is_some_and(|n| n.is_punct(':'))
            && !t.get(j + 2).is_some_and(|n| n.is_punct(':'))
        {
            // Type runs to the `,` at this nesting depth or the close.
            let mut d = 0i32;
            let mut m = j + 2;
            while m < close {
                let y = &t[m];
                if y.is_punct('<') || y.is_punct('(') || y.is_punct('[') || y.is_punct('{') {
                    d += 1;
                } else if y.is_punct('>') || y.is_punct(')') || y.is_punct(']') || y.is_punct('}') {
                    d -= 1;
                } else if d <= 0 && y.is_punct(',') {
                    break;
                }
                m += 1;
            }
            let (base, chain) = base_type_in(&t[j + 2..m], TYPE_WRAPPERS);
            if let Some(base) = base {
                fields.push((x.text.clone(), base));
            }
            if !chain.is_empty() {
                wrapped.push((x.text.clone(), chain));
            }
            j = m + 1;
            continue;
        }
        j += 1;
    }
    (fields, wrapped)
}

/// Parse the item structure of a lexed file.
pub fn parse(lexed: &Lexed) -> ParsedFile {
    let t = &lexed.tokens;
    let mut out = ParsedFile::default();
    let mut stack: Vec<Scope> = Vec::new();
    let mut attr_test = false;
    let in_test = |stack: &[Scope]| -> bool {
        stack.iter().any(|s| {
            matches!(
                s,
                Scope::Mod { is_test: true } | Scope::Impl { is_test: true, .. }
            )
        })
    };
    let owner = |stack: &[Scope]| -> Option<String> {
        stack.iter().rev().find_map(|s| match s {
            Scope::Impl { type_name, .. } => Some(type_name.clone()),
            _ => None,
        })
    };
    let mut i = 0usize;
    while i < t.len() {
        let tok = &t[i];
        // Attributes: `#` `[` ... `]` — remember if they mention `test`.
        if tok.is_punct('#') && t.get(i + 1).is_some_and(|n| n.is_punct('[')) {
            let mut depth = 0i32;
            let mut j = i + 1;
            let mut mentions_test = false;
            while j < t.len() {
                if t[j].is_punct('[') {
                    depth += 1;
                } else if t[j].is_punct(']') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if t[j].is_ident("test") {
                    mentions_test = true;
                }
                j += 1;
            }
            attr_test |= mentions_test;
            i = j + 1;
            continue;
        }
        match tok.kind {
            TokKind::Ident if tok.text == "mod" => {
                // `mod name { ... }` opens a scope; `mod name;` is a
                // file-level declaration.
                let has_body = t
                    .iter()
                    .skip(i + 1)
                    .find(|x| x.is_punct('{') || x.is_punct(';'))
                    .is_some_and(|x| x.is_punct('{'));
                if has_body {
                    let open = (i..t.len()).find(|&j| t[j].is_punct('{'));
                    if let Some(open) = open {
                        stack.push(Scope::Mod {
                            is_test: attr_test || in_test(&stack),
                        });
                        attr_test = false;
                        i = open + 1;
                        continue;
                    }
                }
                attr_test = false;
                i += 1;
            }
            TokKind::Ident if tok.text == "impl" || tok.text == "trait" => {
                let is_trait_decl = tok.text == "trait";
                let Some(open) = (i..t.len()).find(|&j| t[j].is_punct('{') || t[j].is_punct(';'))
                else {
                    break;
                };
                if t[open].is_punct(';') {
                    // e.g. marker `impl Trait for T {}`-less forms.
                    attr_test = false;
                    i = open + 1;
                    continue;
                }
                let header = &t[i + 1..open];
                let (type_name, trait_name) = if is_trait_decl {
                    let (name, _) = path_last_segment(header, 0);
                    (name.unwrap_or_default(), None)
                } else {
                    // `impl [<..>] Path [for Path] [where ..]`.
                    let mut k = 0usize;
                    let (first, after) = path_last_segment(header, k);
                    k = after;
                    if header.get(k).is_some_and(|x| x.is_ident("for")) {
                        let (second, _) = path_last_segment(header, k + 1);
                        (second.unwrap_or_default(), first)
                    } else {
                        (first.unwrap_or_default(), None)
                    }
                };
                let close = matching_brace(t, open);
                out.impls.push(ImplInfo {
                    trait_name,
                    type_name: type_name.clone(),
                    body: (open, close),
                });
                stack.push(Scope::Impl {
                    type_name,
                    is_test: attr_test || in_test(&stack),
                });
                attr_test = false;
                i = open + 1;
            }
            TokKind::Ident if tok.text == "fn" => {
                let name = match t.get(i + 1) {
                    Some(n) if n.kind == TokKind::Ident => n.text.clone(),
                    _ => {
                        i += 1;
                        continue;
                    }
                };
                // Body starts at the first `{` at zero paren/bracket
                // depth; a `;` there means a bodyless declaration. A
                // `->` / `where` at the same depth brackets the return
                // type on the way.
                let mut depth = 0i32;
                let mut j = i + 2;
                let mut open = None;
                let mut arrow: Option<usize> = None;
                let mut ret_end: Option<usize> = None;
                while j < t.len() {
                    let x = &t[j];
                    if x.is_punct('(') || x.is_punct('[') {
                        depth += 1;
                    } else if x.is_punct(')') || x.is_punct(']') {
                        depth -= 1;
                    } else if depth == 0 && x.is_punct('{') {
                        open = Some(j);
                        break;
                    } else if depth == 0 && x.is_punct(';') {
                        break;
                    } else if depth == 0
                        && x.is_punct('-')
                        && t.get(j + 1).is_some_and(|n| n.is_punct('>'))
                    {
                        arrow.get_or_insert(j + 2);
                    } else if depth == 0 && x.is_ident("where") {
                        ret_end.get_or_insert(j);
                    }
                    j += 1;
                }
                let Some(open) = open else {
                    attr_test = false;
                    i = j + 1;
                    continue;
                };
                let ret = arrow
                    .and_then(|a| base_type_in(&t[a..ret_end.unwrap_or(open)], RET_WRAPPERS).0);
                let close = matching_brace(t, open);
                let own = owner(&stack);
                let qual = match &own {
                    Some(o) => format!("{o}::{name}"),
                    None => name.clone(),
                };
                out.fns.push(FnInfo {
                    name,
                    owner: own,
                    qual,
                    is_test: attr_test || in_test(&stack),
                    body: (open, close),
                    decl: i,
                    line: tok.line,
                    ret,
                });
                attr_test = false;
                // Bodies are opaque to item discovery.
                i = close + 1;
            }
            TokKind::Ident if tok.text == "struct" => {
                let name = match t.get(i + 1) {
                    Some(n) if n.kind == TokKind::Ident => n.text.clone(),
                    _ => {
                        i += 1;
                        continue;
                    }
                };
                // Named-field structs open with `{`; tuple (`(`) and unit
                // (`;`) structs carry no resolvable fields.
                let mut j = i + 2;
                let mut open = None;
                let mut depth = 0i32;
                while j < t.len() {
                    let x = &t[j];
                    if x.is_punct('(') || x.is_punct('[') {
                        depth += 1;
                    } else if x.is_punct(')') || x.is_punct(']') {
                        depth -= 1;
                    } else if depth == 0 && x.is_punct('{') {
                        open = Some(j);
                        break;
                    } else if depth == 0 && x.is_punct(';') {
                        break;
                    }
                    j += 1;
                }
                let Some(open) = open else {
                    out.structs.push(StructInfo {
                        name,
                        fields: Vec::new(),
                        wrapped: Vec::new(),
                    });
                    attr_test = false;
                    i = j + 1;
                    continue;
                };
                let close = matching_brace(t, open);
                let (fields, wrapped) = struct_fields(t, open, close);
                out.structs.push(StructInfo {
                    name,
                    fields,
                    wrapped,
                });
                attr_test = false;
                i = close + 1;
            }
            TokKind::Ident if tok.text == "enum" => {
                let name = match t.get(i + 1) {
                    Some(n) if n.kind == TokKind::Ident => n.text.clone(),
                    _ => {
                        i += 1;
                        continue;
                    }
                };
                let Some(open) = (i..t.len()).find(|&j| t[j].is_punct('{')) else {
                    break;
                };
                let close = matching_brace(t, open);
                // Variants are the idents at depth 1 that start a field:
                // the first token after `{` or after a depth-1 `,`,
                // skipping attribute spans.
                let mut variants = Vec::new();
                let mut depth = 0i32;
                let mut expect_variant = false;
                let mut j = open;
                while j <= close {
                    let x = &t[j];
                    if x.is_punct('{') || x.is_punct('(') || x.is_punct('[') {
                        if depth == 1 && x.is_punct('[') {
                            // attribute `#[...]` inside the enum body
                        }
                        depth += 1;
                        if depth == 1 {
                            expect_variant = true;
                        }
                    } else if x.is_punct('}') || x.is_punct(')') || x.is_punct(']') {
                        depth -= 1;
                    } else if depth == 1 && x.is_punct(',') {
                        expect_variant = true;
                    } else if depth == 1 && x.is_punct('#') {
                        // skip the attr; `[` handling above keeps depth sane
                    } else if depth == 1 && expect_variant && x.kind == TokKind::Ident {
                        variants.push(x.text.clone());
                        expect_variant = false;
                    }
                    j += 1;
                }
                out.enums.push(EnumInfo {
                    name,
                    variants,
                    is_test: attr_test || in_test(&stack),
                    line: tok.line,
                });
                attr_test = false;
                i = close + 1;
            }
            TokKind::Punct if tok.is_punct('{') => {
                stack.push(Scope::Other);
                i += 1;
            }
            TokKind::Punct if tok.is_punct('}') => {
                stack.pop();
                i += 1;
            }
            _ => {
                // Any other token at item scope consumes pending attrs
                // (e.g. derives on structs).
                if !(tok.is_ident("pub")
                    || tok.is_ident("const")
                    || tok.is_ident("unsafe")
                    || tok.is_ident("async"))
                {
                    attr_test = false;
                }
                i += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parsed(src: &str) -> ParsedFile {
        parse(&lex(src))
    }

    #[test]
    fn finds_fns_with_owners() {
        let p = parsed(
            "impl Cluster { pub fn put(&self) -> u8 { 0 } }\nfn free() {}\ntrait T { fn m(&self) { } }",
        );
        let quals: Vec<&str> = p.fns.iter().map(|f| f.qual.as_str()).collect();
        assert_eq!(quals, ["Cluster::put", "free", "T::m"]);
        assert!(p.fns.iter().all(|f| !f.is_test));
    }

    #[test]
    fn trait_impl_header_is_split() {
        let p = parsed("impl Classify for NodeError { fn class(&self) {} }");
        assert_eq!(p.impls[0].trait_name.as_deref(), Some("Classify"));
        assert_eq!(p.impls[0].type_name, "NodeError");
        assert_eq!(p.fns[0].qual, "NodeError::class");
    }

    #[test]
    fn qualified_trait_paths_take_last_segment() {
        let p = parsed("impl std::fmt::Display for Thing { fn fmt(&self) {} }");
        assert_eq!(p.impls[0].trait_name.as_deref(), Some("Display"));
        assert_eq!(p.impls[0].type_name, "Thing");
    }

    #[test]
    fn cfg_test_mod_marks_fns() {
        let p = parsed(
            "fn real() {}\n#[cfg(test)]\nmod tests {\n #[test]\n fn t() { real(); }\n fn helper() {}\n}",
        );
        let by_name = |n: &str| p.fns.iter().find(|f| f.name == n).unwrap();
        assert!(!by_name("real").is_test);
        assert!(by_name("t").is_test);
        assert!(by_name("helper").is_test, "helpers inside cfg(test) count");
    }

    #[test]
    fn enum_variants_with_payloads() {
        let p = parsed(
            "pub enum E {\n  A,\n  B { x: u8, y: u8 },\n  C(Vec<String>),\n  #[doc = \"d\"]\n  D,\n}",
        );
        assert_eq!(p.enums[0].variants, ["A", "B", "C", "D"]);
    }

    #[test]
    fn generic_fn_signatures_find_their_body() {
        let p = parsed(
            "fn g<T: Into<Vec<u8>>>(x: T) -> Result<(), String> where T: Clone { let y = [1, 2]; }",
        );
        assert_eq!(p.fns.len(), 1);
        assert_eq!(p.fns[0].name, "g");
    }

    #[test]
    fn fn_return_types_reduce_to_base() {
        let p = parsed(
            "impl Cluster {\n\
               fn node(&self, i: usize) -> Result<Arc<StorageNode>, EchError> { Err(e) }\n\
               fn dirty_mut(&mut self) -> &mut KvDirtyTable { &mut self.dirty }\n\
               fn version(&self) -> u64 where Self: Sized { 0 }\n\
               fn current(&self) -> Self { Self }\n\
               fn tick(&self) { }\n\
             }",
        );
        let ret = |n: &str| p.fns.iter().find(|f| f.name == n).unwrap().ret.as_deref();
        assert_eq!(ret("node"), Some("StorageNode"), "Result/Arc stripped");
        assert_eq!(ret("dirty_mut"), Some("KvDirtyTable"), "&mut stripped");
        assert_eq!(ret("version"), Some("u64"), "where clause ends the span");
        assert_eq!(ret("current"), Some("Self"));
        assert_eq!(ret("tick"), None, "no arrow, no return type");
    }

    #[test]
    fn struct_fields_strip_wrappers_to_base_types() {
        let p = parsed(
            "pub struct Cluster {\n\
               view: ArcSwap<ClusterView>,\n\
               pub(crate) dirty: KvDirtyTable,\n\
               engine: std::sync::Mutex<Reintegrator>,\n\
               limiter: Option<Mutex<MigrationThrottle>>,\n\
               #[allow(dead_code)]\n\
               tables: Vec<MembershipTable>,\n\
               count: u64,\n\
             }\n\
             struct Unit;\n\
             struct Tuple(u8, u16);",
        );
        assert_eq!(p.structs.len(), 3);
        let c = &p.structs[0];
        assert_eq!(c.name, "Cluster");
        let get = |n: &str| {
            c.fields
                .iter()
                .find(|(f, _)| f == n)
                .map(|(_, t)| t.as_str())
        };
        assert_eq!(get("view"), Some("ClusterView"));
        assert_eq!(get("dirty"), Some("KvDirtyTable"));
        assert_eq!(get("engine"), Some("Reintegrator"));
        assert_eq!(get("limiter"), Some("MigrationThrottle"));
        assert_eq!(get("tables"), Some("Vec"), "containers are not stripped");
        assert_eq!(get("count"), Some("u64"));
        let wrap = |n: &str| c.wrapped.iter().find(|(f, _)| f == n).map(|(_, w)| &w[..]);
        assert_eq!(wrap("view"), Some(&["ArcSwap".to_string()][..]));
        assert_eq!(wrap("engine"), Some(&["Mutex".to_string()][..]));
        assert_eq!(
            wrap("limiter"),
            Some(&["Option".to_string(), "Mutex".to_string()][..]),
            "chain is outermost-first"
        );
        assert_eq!(wrap("dirty"), None, "bare fields record no chain");
        assert_eq!(wrap("tables"), None, "containers are not wrappers");
        assert!(p.structs[1].fields.is_empty());
        assert!(p.structs[2].fields.is_empty());
    }

    #[test]
    fn impl_with_generics() {
        let p = parsed("impl<T: Clone> Wrapper<T> { fn w(&self) {} }");
        assert_eq!(p.impls[0].type_name, "Wrapper");
        assert_eq!(p.fns[0].qual, "Wrapper::w");
    }
}
