//! Binary entry point: thin wrapper over [`ech_analyzer::run_cli`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(ech_analyzer::run_cli(&args));
}
