//! Failure handling: crash injection and re-replication repair.
//!
//! Elasticity and fault tolerance share machinery in consistent-hashing
//! stores — Sheepdog's "recovery feature … is mainly utilized for
//! tolerating failures or expanding the cluster size" (§IV). The elastic
//! design deliberately re-uses membership versioning for power states;
//! this module adds the *failure* side: a crashed node loses its disk
//! contents (unlike a powered-down node, whose data survives), and a
//! repair pass re-creates the lost replicas from survivors at the current
//! placement.

use crate::cluster::Cluster;
use crate::node::NodeError;
use ech_core::ids::ServerId;
use ech_core::membership::PowerState;

/// Outcome of a repair scan.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RepairStats {
    /// Objects examined.
    pub scanned: usize,
    /// Replicas re-created from surviving copies.
    pub recreated: usize,
    /// Payload bytes copied.
    pub bytes: u64,
    /// Objects with **no** surviving replica anywhere (data loss).
    pub unrecoverable: usize,
}

impl Cluster {
    /// Crash `server`: its disk contents are lost and it leaves the
    /// placement (a new membership version is recorded). Returns the
    /// number of replicas that vanished with it.
    ///
    /// Unlike [`Cluster::resize`], a crash may hit any rank, so the
    /// resulting membership is not necessarily an expansion-chain prefix.
    pub fn crash_node(&self, server: ServerId) -> usize {
        // Order matters: take the server out of placement first so
        // concurrent writes stop targeting it, then drop its data.
        self.update_view(|view| {
            let table = view
                .current_membership()
                .with_state(server, PowerState::Off);
            view.record_membership(table);
        });
        self.node(server).map_or(0, |n| n.crash())
    }

    /// Bring a crashed (or powered-down) server back with an empty disk.
    /// Records a new membership version including it.
    pub fn revive_node(&self, server: ServerId) {
        self.update_view(|view| {
            let table = view.current_membership().with_state(server, PowerState::On);
            view.record_membership(table);
        });
        if let Ok(n) = self.node(server) {
            n.set_powered(true);
        }
    }

    /// Re-replication repair: for every tracked object, ensure each
    /// replica required by the *current* placement physically exists,
    /// copying from any surviving replica when it does not. This is the
    /// clean-up work original CH must finish before tolerating another
    /// departure (§II-C) — and the work the primary design avoids for
    /// *power-downs* but still needs for *crashes*.
    pub fn repair(&self) -> RepairStats {
        use ech_core::dirty::HeaderSource;
        let retry = self.config().retry;
        let clock = self.clock().clone();
        let mut stats = RepairStats::default();
        let oids = self.headers().all_objects();
        for oid in oids {
            stats.scanned += 1;
            let expected = self.headers().header(oid).map(|h| h.version);
            let Ok(placement) = self.locate(oid) else {
                continue;
            };
            // One budget per repaired object, threaded through every
            // retry loop below (rule D8): a dark fabric costs one
            // deadline per object, not one per probe.
            let deadline = self.op_deadline();
            // Garbage-collect stale replicas first: copies written at an
            // older version than the authoritative header were superseded
            // by a rewrite and must never serve reads or act as repair
            // sources.
            if let Some(ver) = expected {
                for node in self.nodes() {
                    if node.is_powered() {
                        if let Ok(obj) = self.rpc(node.id(), node, |n| n.get(oid)) {
                            if obj.header.version < ver {
                                // ech-allow(D7): stale-replica GC is a reconciliation message the coordinator repeats at will; it rides the reliable queue and bypasses the fabric (DESIGN §8)
                                node.remove(oid);
                            }
                        }
                    }
                }
            }
            // Find one live, version-matching replica to copy from. The
            // probe retries transient faults: an injected I/O error must
            // not make a healthy survivor invisible — that would turn a
            // repairable object into a false "unrecoverable" verdict.
            let fresh = |n: &crate::node::StorageNode| -> bool {
                n.is_powered()
                    && retry
                        .run_deadline(
                            &*clock,
                            deadline,
                            oid.raw() ^ ((n.id().index() as u64) << 48),
                            NodeError::is_transient,
                            || self.rpc(n.id(), n, |node| node.get(oid)),
                        )
                        .map(|o| expected.is_none_or(|v| o.header.version == v))
                        .unwrap_or(false)
            };
            let source = self.nodes().iter().find(|n| fresh(n));
            let Some(source) = source else {
                // A fresh copy may be trapped on a powered-down (not
                // crashed) node — readable again after power-up; only
                // count as unrecoverable when no node holds one at all.
                let trapped = self.nodes().iter().any(|n| !n.is_powered() && n.holds(oid));
                if !trapped {
                    stats.unrecoverable += 1;
                }
                continue;
            };
            let Ok(obj) = retry.run_deadline(
                &*clock,
                deadline,
                oid.raw(),
                NodeError::is_transient,
                || self.rpc(source.id(), source, |n| n.get(oid)),
            ) else {
                continue;
            };
            for &target in placement.servers() {
                let Ok(node) = self.node(target) else {
                    continue;
                };
                if node.holds(oid) {
                    continue;
                }
                let put = retry.run_deadline(
                    &*clock,
                    deadline,
                    oid.raw() ^ ((target.index() as u64) << 48),
                    NodeError::is_transient,
                    || {
                        self.rpc(target, node, |n| {
                            n.put(oid, obj.data.clone(), obj.header.version, obj.header.dirty)
                        })
                    },
                );
                match put {
                    Ok(()) => {
                        stats.recreated += 1;
                        stats.bytes += obj.data.len() as u64;
                    }
                    Err(NodeError::PoweredOff) => {
                        // Placement should never name a powered-off node;
                        // a racing resize can cause this — the next repair
                        // pass will fix it.
                    }
                    Err(_) => {}
                }
            }
        }
        stats
    }

    /// Count objects whose current placement is missing at least one
    /// physical replica (the under-replication metric repair drives to
    /// zero).
    pub fn under_replicated(&self) -> usize {
        self.headers()
            .all_objects()
            .into_iter()
            .filter(|&oid| !self.is_fully_placed(oid))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use crate::cluster::{Cluster, ClusterConfig};
    use bytes::Bytes;
    use ech_core::ids::{ObjectId, ServerId};

    fn payload(oid: u64) -> Bytes {
        Bytes::from(format!("payload-{oid}"))
    }

    fn loaded_cluster(objects: u64) -> std::sync::Arc<Cluster> {
        let c = Cluster::new(ClusterConfig::paper());
        for i in 0..objects {
            c.put(ObjectId(i), payload(i)).unwrap();
        }
        c
    }

    #[test]
    fn crash_then_repair_restores_replication() {
        let c = loaded_cluster(400);
        let lost = c.crash_node(ServerId(5));
        assert!(lost > 0, "rank 6 should have held replicas");
        assert!(c.under_replicated() > 0);
        // Everything still readable from the surviving replica.
        for i in 0..400u64 {
            assert_eq!(c.get(ObjectId(i)).unwrap(), payload(i));
        }
        let stats = c.repair();
        assert_eq!(stats.scanned, 400);
        assert!(stats.recreated > 0);
        assert_eq!(stats.unrecoverable, 0);
        assert_eq!(c.under_replicated(), 0);
    }

    #[test]
    fn crashing_a_primary_is_survivable() {
        let c = loaded_cluster(300);
        // Rank 1 is a primary holding ~half of one copy.
        let lost = c.crash_node(ServerId(0));
        assert!(lost > 50);
        for i in 0..300u64 {
            assert_eq!(c.get(ObjectId(i)).unwrap(), payload(i), "object {i}");
        }
        let stats = c.repair();
        assert_eq!(stats.unrecoverable, 0);
        assert_eq!(c.under_replicated(), 0);
        // The placement invariant is restored on the surviving membership:
        // every object fully placed on active servers.
        for i in 0..300u64 {
            assert!(c.is_fully_placed(ObjectId(i)));
        }
    }

    #[test]
    fn double_crash_with_r2_loses_only_doubly_hit_objects() {
        let c = loaded_cluster(1_000);
        // Record which objects had both replicas on servers 6 and 7.
        let doomed: Vec<u64> = (0..1_000u64)
            .filter(|&i| {
                let p = c.locate(ObjectId(i)).unwrap();
                p.contains(ServerId(6)) && p.contains(ServerId(7))
            })
            .collect();
        c.crash_node(ServerId(6));
        // Repair between crashes would save everything; crash the second
        // node immediately to create real loss.
        c.crash_node(ServerId(7));
        let stats = c.repair();
        assert_eq!(
            stats.unrecoverable,
            doomed.len(),
            "exactly the doubly-hit objects are lost"
        );
        for i in 0..1_000u64 {
            let oid = ObjectId(i);
            if doomed.contains(&i) {
                assert!(c.get(oid).is_err(), "object {i} should be gone");
            } else {
                assert_eq!(c.get(oid).unwrap(), payload(i), "object {i}");
            }
        }
    }

    #[test]
    fn repair_between_crashes_prevents_loss() {
        let c = loaded_cluster(500);
        c.crash_node(ServerId(6));
        let s1 = c.repair();
        assert_eq!(s1.unrecoverable, 0);
        c.crash_node(ServerId(7));
        let s2 = c.repair();
        assert_eq!(s2.unrecoverable, 0, "repairing between crashes saves all");
        for i in 0..500u64 {
            assert_eq!(c.get(ObjectId(i)).unwrap(), payload(i));
        }
    }

    #[test]
    fn revive_rejoins_with_empty_disk() {
        let c = loaded_cluster(200);
        c.crash_node(ServerId(4));
        c.repair();
        c.revive_node(ServerId(4));
        // The revived node is placement-eligible again; a repair pass
        // moves its share of replicas back.
        let stats = c.repair();
        assert!(stats.recreated > 0, "revived node should receive replicas");
        assert_eq!(c.under_replicated(), 0);
        assert!(c.nodes()[4].object_count() > 0);
    }

    #[test]
    fn under_replicated_accounting_through_crash_revive_repair_cycles() {
        let c = loaded_cluster(300);
        assert_eq!(c.under_replicated(), 0);
        c.crash_node(ServerId(3));
        assert!(c.under_replicated() > 0, "crash strands replicas");
        c.repair();
        assert_eq!(c.under_replicated(), 0, "repair restores replication");
        // Revive with an empty disk: placement immediately includes the
        // server again, so its share of objects counts as
        // under-replicated until the next repair pass moves them back.
        c.revive_node(ServerId(3));
        assert!(c.under_replicated() > 0, "revived disk is empty");
        c.repair();
        assert_eq!(c.under_replicated(), 0);
        // A second cycle on a different server behaves identically.
        c.crash_node(ServerId(8));
        assert!(c.under_replicated() > 0);
        c.repair();
        assert_eq!(c.under_replicated(), 0);
        c.revive_node(ServerId(8));
        c.repair();
        assert_eq!(c.under_replicated(), 0);
        for i in 0..300u64 {
            assert_eq!(c.get(ObjectId(i)).unwrap(), payload(i), "object {i}");
        }
    }

    #[test]
    fn repair_is_idempotent() {
        let c = loaded_cluster(250);
        c.crash_node(ServerId(2));
        let first = c.repair();
        assert!(first.recreated > 0);
        assert_eq!(first.unrecoverable, 0);
        let second = c.repair();
        assert_eq!(second.scanned, first.scanned);
        assert_eq!(second.recreated, 0, "second pass must find nothing to do");
        assert_eq!(second.bytes, 0);
        assert_eq!(second.unrecoverable, 0);
        assert_eq!(c.under_replicated(), 0);
    }

    #[test]
    fn powered_down_data_is_not_counted_unrecoverable() {
        let c = loaded_cluster(200);
        // Power down (not crash) the tail: their data survives.
        c.resize(6);
        // Crash an active holder: some objects may now have their only
        // live replica on a powered-down node — repair must not call them
        // unrecoverable (the disk still has them).
        c.crash_node(ServerId(2));
        let stats = c.repair();
        assert_eq!(
            stats.unrecoverable, 0,
            "data on powered-down disks is recoverable"
        );
    }
}
