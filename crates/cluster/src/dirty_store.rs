//! The distributed dirty table and header store, backed by `ech-kvstore`.
//!
//! §IV: "we use Redis, an in-memory key-value store, for managing the
//! dirty table. The dirty table is managed using the LIST data type...
//! Each dirty data entry is inserted using RPUSH... a LRANGE command is
//! used to fetch the (OID, version) pair... a LPOP command is used to
//! remove" it. This module is that wiring, with object headers kept in a
//! HASH alongside.

use crate::fault::{Clock, SystemClock};
use crate::sync::{footprint, footprint_read, footprint_write};
use ech_core::dirty::{DirtyEntry, DirtyTable, HeaderSource, ObjectHeader};
use ech_core::ids::{ObjectId, VersionId};
use ech_kvstore::{KvError, KvStore};
use std::sync::Arc;

/// Key of the dirty-table LIST.
const DIRTY_KEY: &str = "ech:dirty";
/// Key of the object-header HASH.
const HEADER_KEY: &str = "ech:headers";

/// Run a kv operation through transient shard outages. Outage windows
/// live in kv-op-count space and every attempt advances the counter, so
/// retrying always exits a finite window; the budget only guards against
/// a misconfigured fault plan. Metadata must not be silently dropped, so
/// anything else (type confusion, exhausted budget) still panics.
fn kv_retry<T>(clock: &dyn Clock, what: &str, op: impl Fn() -> Result<T, KvError>) -> T {
    let mut last = None;
    for _ in 0..256 {
        match op() {
            Ok(v) => return v,
            Err(e @ KvError::Unavailable { .. }) => {
                last = Some(e);
                clock.sleep(std::time::Duration::from_micros(20));
            }
            // ech-allow(D2): metadata corruption (type confusion on the
            // dirty-table keys) is unrecoverable; losing dirty entries
            // silently would break Algorithm 2's draining guarantee.
            Err(e) => panic!("{what}: {e}"),
        }
    }
    match last {
        // ech-allow(D2): a 256-attempt budget only exhausts under a
        // misconfigured fault plan; surfacing loudly beats losing metadata.
        Some(e) => panic!("{what}: {e}"),
        // ech-allow(D2): the loop body returns on Ok and records on Err.
        None => unreachable!("loop only exits with an error"),
    }
}

/// Serialize a dirty entry as `oid:version` (the value RPUSHed).
fn encode_entry(e: &DirtyEntry) -> String {
    format!("{}:{}", e.oid.raw(), e.version.raw())
}

/// Parse an `oid:version` pair.
fn decode_entry(bytes: &[u8]) -> Option<DirtyEntry> {
    let s = std::str::from_utf8(bytes).ok()?;
    let (oid, ver) = s.split_once(':')?;
    Some(DirtyEntry {
        oid: ObjectId(oid.parse().ok()?),
        version: VersionId(ver.parse().ok()?),
    })
}

/// Dirty table living in the shared key-value store.
///
/// Clones share the same underlying store, so the write path (logger) and
/// the re-integration engine can hold their own handles.
#[derive(Debug, Clone)]
pub struct KvDirtyTable {
    kv: Arc<KvStore>,
    clock: Arc<dyn Clock>,
}

impl KvDirtyTable {
    /// Wrap a store, sleeping retries on the wall clock.
    pub fn new(kv: Arc<KvStore>) -> Self {
        KvDirtyTable::with_clock(kv, Arc::new(SystemClock::new()))
    }

    /// Wrap a store, sleeping brown-out retries on `clock`.
    pub fn with_clock(kv: Arc<KvStore>, clock: Arc<dyn Clock>) -> Self {
        KvDirtyTable { kv, clock }
    }
}

impl DirtyTable for KvDirtyTable {
    fn push_back(&mut self, entry: DirtyEntry) {
        footprint_write(footprint::DIRTY);
        kv_retry(&*self.clock, "RPUSH dirty entry", || {
            self.kv.rpush(DIRTY_KEY, encode_entry(&entry))
        });
    }

    fn get(&self, index: usize) -> Option<DirtyEntry> {
        footprint_read(footprint::DIRTY);
        kv_retry(&*self.clock, "LINDEX dirty entry", || {
            self.kv.lindex(DIRTY_KEY, index)
        })
        .and_then(|b| decode_entry(&b))
    }

    fn pop_front(&mut self) -> Option<DirtyEntry> {
        footprint_write(footprint::DIRTY);
        kv_retry(&*self.clock, "LPOP dirty entry", || self.kv.lpop(DIRTY_KEY))
            .and_then(|b| decode_entry(&b))
    }

    fn get_range(&self, start: usize, count: usize) -> Vec<DirtyEntry> {
        if count == 0 {
            return Vec::new();
        }
        let stop = start.saturating_add(count - 1);
        footprint_read(footprint::DIRTY);
        kv_retry(&*self.clock, "LRANGE dirty entries", || {
            self.kv.lrange(DIRTY_KEY, start, stop)
        })
        .iter()
        // map_while: a malformed record truncates the batch, matching the
        // per-index `get` contract (a None mid-table halts the scan).
        .map_while(|b| decode_entry(b))
        .collect()
    }

    fn pop_front_n(&mut self, count: usize) -> Vec<DirtyEntry> {
        if count == 0 {
            return Vec::new();
        }
        // Peek before popping: the batch must stop at the first
        // undecodable record *without consuming it*, matching
        // `get_range`'s map_while policy — a bare counted LPOP would
        // remove the corrupt record and everything behind it, popping
        // entries the planner's preceding peek never surfaced.
        footprint_write(footprint::DIRTY);
        let decoded: Vec<DirtyEntry> = kv_retry(&*self.clock, "LRANGE dirty entries", || {
            self.kv.lrange(DIRTY_KEY, 0, count - 1)
        })
        .iter()
        .map_while(|b| decode_entry(b))
        .collect();
        if !decoded.is_empty() {
            kv_retry(&*self.clock, "LPOP dirty entries", || {
                self.kv.lpop_n(DIRTY_KEY, decoded.len())
            });
        }
        decoded
    }

    fn len(&self) -> usize {
        footprint_read(footprint::DIRTY);
        kv_retry(&*self.clock, "LLEN dirty table", || self.kv.llen(DIRTY_KEY))
    }
}

/// Object-header map in the shared key-value store (HSET/HGET on one
/// hash keyed by OID; values are `version:dirty-bit`).
#[derive(Debug, Clone)]
pub struct KvHeaderStore {
    kv: Arc<KvStore>,
    clock: Arc<dyn Clock>,
}

impl KvHeaderStore {
    /// Wrap a store, sleeping retries on the wall clock.
    pub fn new(kv: Arc<KvStore>) -> Self {
        KvHeaderStore::with_clock(kv, Arc::new(SystemClock::new()))
    }

    /// Wrap a store, sleeping brown-out retries on `clock`.
    pub fn with_clock(kv: Arc<KvStore>, clock: Arc<dyn Clock>) -> Self {
        KvHeaderStore { kv, clock }
    }

    /// Record a write of `oid` at `version` with the given dirty bit.
    pub fn record_write(&self, oid: ObjectId, version: VersionId, dirty: bool) {
        footprint_write(footprint::HEADERS);
        kv_retry(&*self.clock, "HSET object header", || {
            self.kv.hset(
                HEADER_KEY,
                &oid.raw().to_string(),
                format!("{}:{}", version.raw(), u8::from(dirty)),
            )
        });
    }

    /// Clear the dirty bit after re-integration to a full-power version.
    pub fn mark_clean(&self, oid: ObjectId, version: VersionId) {
        footprint_write(footprint::HEADERS);
        kv_retry(&*self.clock, "HSET clean header", || {
            self.kv.hset(
                HEADER_KEY,
                &oid.raw().to_string(),
                format!("{}:0", version.raw()),
            )
        });
    }

    /// Number of tracked objects.
    pub fn len(&self) -> usize {
        footprint_read(footprint::HEADERS);
        kv_retry(&*self.clock, "HLEN header store", || {
            self.kv.hlen(HEADER_KEY)
        })
    }

    /// All tracked object ids, sorted. Repair scans use this to
    /// enumerate the object population; the sort pins the scan order
    /// (the kv hash iterates in process-random order), which keeps
    /// fault-injection replays byte-identical across runs.
    pub fn all_objects(&self) -> Vec<ObjectId> {
        footprint_read(footprint::HEADERS);
        let mut oids: Vec<ObjectId> = kv_retry(&*self.clock, "HKEYS header store", || {
            self.kv.hkeys(HEADER_KEY)
        })
        .into_iter()
        .filter_map(|k| k.parse::<u64>().ok().map(ObjectId))
        .collect();
        oids.sort_unstable();
        oids
    }

    /// True when no headers are tracked.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl HeaderSource for KvHeaderStore {
    fn header(&self, oid: ObjectId) -> Option<ObjectHeader> {
        footprint_read(footprint::HEADERS);
        let raw = kv_retry(&*self.clock, "HGET object header", || {
            self.kv.hget(HEADER_KEY, &oid.raw().to_string())
        })?;
        let s = std::str::from_utf8(&raw).ok()?;
        let (ver, dirty) = s.split_once(':')?;
        Some(ObjectHeader {
            version: VersionId(ver.parse().ok()?),
            dirty: dirty == "1",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> (KvDirtyTable, KvHeaderStore) {
        let kv = Arc::new(KvStore::new(4));
        (KvDirtyTable::new(kv.clone()), KvHeaderStore::new(kv))
    }

    #[test]
    fn dirty_table_round_trips_through_redis_ops() {
        let (mut t, _) = table();
        assert!(t.is_empty());
        for (oid, ver) in [(100u64, 8u64), (200, 8), (10010, 9)] {
            t.push_back(DirtyEntry::new(ObjectId(oid), VersionId(ver)));
        }
        assert_eq!(t.len(), 3);
        // LRANGE-style positional fetch does not consume.
        assert_eq!(t.get(0).unwrap().oid, ObjectId(100));
        assert_eq!(t.get(2).unwrap().version, VersionId(9));
        assert_eq!(t.len(), 3);
        // LPOP consumes from the head.
        assert_eq!(t.pop_front().unwrap().oid, ObjectId(100));
        assert_eq!(t.len(), 2);
        assert!(t.get(5).is_none());
    }

    #[test]
    fn batched_range_and_pop_match_sequential_ops() {
        let (mut t, _) = table();
        let entries: Vec<DirtyEntry> = (0..6u64)
            .map(|i| DirtyEntry::new(ObjectId(100 + i), VersionId(2 + i / 3)))
            .collect();
        for &e in &entries {
            t.push_back(e);
        }
        assert_eq!(t.get_range(0, 6), entries);
        assert_eq!(t.get_range(4, 10), entries[4..6]);
        assert!(t.get_range(6, 2).is_empty());
        assert!(t.get_range(0, 0).is_empty());
        assert_eq!(t.pop_front_n(4), entries[0..4]);
        assert_eq!(t.len(), 2);
        assert_eq!(t.pop_front_n(100), entries[4..6]);
        assert!(t.is_empty());
    }

    #[test]
    fn batched_ops_stop_at_first_malformed_record_without_consuming_it() {
        let kv = Arc::new(KvStore::new(4));
        let mut t = KvDirtyTable::new(kv.clone());
        let clean = [
            DirtyEntry::new(ObjectId(1), VersionId(2)),
            DirtyEntry::new(ObjectId(2), VersionId(2)),
        ];
        for e in clean {
            t.push_back(e);
        }
        kv.rpush(DIRTY_KEY, "garbage").unwrap();
        t.push_back(DirtyEntry::new(ObjectId(3), VersionId(3)));

        // Both batched ops truncate at the corrupt record, and the pop
        // consumes only the prefix it returned — the corrupt record
        // stays at the head instead of being dropped along with the
        // entries behind it (which the peek never surfaced).
        assert_eq!(t.get_range(0, 10), clean);
        assert_eq!(t.pop_front_n(10), clean);
        assert_eq!(t.len(), 2);
        assert!(t.pop_front_n(10).is_empty());
        assert_eq!(t.len(), 2);
        // The per-entry pop is what consumes the corrupt head.
        assert!(t.pop_front().is_none());
        assert_eq!(
            t.pop_front(),
            Some(DirtyEntry::new(ObjectId(3), VersionId(3)))
        );
    }

    #[test]
    fn header_store_tracks_latest_version_and_dirty_bit() {
        let (_, h) = table();
        assert!(h.header(ObjectId(1)).is_none());
        h.record_write(ObjectId(1), VersionId(9), true);
        let hdr = h.header(ObjectId(1)).unwrap();
        assert_eq!(hdr.version, VersionId(9));
        assert!(hdr.dirty);
        h.record_write(ObjectId(1), VersionId(10), true);
        assert_eq!(h.header(ObjectId(1)).unwrap().version, VersionId(10));
        h.mark_clean(ObjectId(1), VersionId(11));
        let hdr = h.header(ObjectId(1)).unwrap();
        assert!(!hdr.dirty);
        assert_eq!(hdr.version, VersionId(11));
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn all_objects_enumerates_headers() {
        let (_, h) = table();
        for oid in [5u64, 9, 10010] {
            h.record_write(ObjectId(oid), VersionId(3), true);
        }
        let mut oids = h.all_objects();
        oids.sort();
        assert_eq!(oids, vec![ObjectId(5), ObjectId(9), ObjectId(10010)]);
    }

    #[test]
    fn malformed_entries_decode_to_none() {
        assert!(decode_entry(b"garbage").is_none());
        assert!(decode_entry(b"1:2:3").is_none());
        assert!(decode_entry(b"x:1").is_none());
        assert!(decode_entry(&[0xff, 0xfe]).is_none());
        assert_eq!(
            decode_entry(b"10010:9"),
            Some(DirtyEntry::new(ObjectId(10010), VersionId(9)))
        );
    }

    #[test]
    fn clones_share_the_same_table() {
        let (mut a, _) = table();
        let mut b = a.clone();
        a.push_back(DirtyEntry::new(ObjectId(5), VersionId(2)));
        assert_eq!(b.len(), 1);
        assert_eq!(b.pop_front().unwrap().oid, ObjectId(5));
        assert!(a.is_empty());
    }
}
