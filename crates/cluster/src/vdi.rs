//! Virtual disk images: byte-addressable volumes striped over objects.
//!
//! The paper's testbed exposed the Sheepdog cluster to a KVM-QEMU client
//! as a 100 GB virtual disk carved into 4 MB data objects (§V-A). This
//! module is that interface: a [`VirtualDisk`] maps byte offsets to
//! object IDs (Sheepdog-style: the VDI id in the high bits, the stripe
//! index in the low bits) and performs read-modify-write for unaligned
//! accesses. Unwritten regions read as zeros, so volumes are sparse.
//!
//! Concurrency: like a raw block device, the volume does not serialise
//! overlapping writes — two clients read-modify-writing the same stripe
//! race exactly as they would against one disk sector. Run one client
//! per region (the paper's setup: a single KVM guest owns the volume) or
//! layer a lock above this interface.

use crate::cluster::{Cluster, ClusterError};
use bytes::Bytes;
use ech_core::ids::ObjectId;
use std::sync::Arc;

/// A sparse, byte-addressable volume backed by cluster objects.
#[derive(Clone)]
pub struct VirtualDisk {
    cluster: Arc<Cluster>,
    /// Volume id — the high 24 bits of every object id (Sheepdog packs
    /// the VDI id above the stripe index).
    vdi_id: u32,
    /// Stripe size in bytes.
    object_size: u64,
    /// Volume size in bytes.
    size: u64,
}

/// Errors from virtual-disk I/O.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VdiError {
    /// Access beyond the end of the volume.
    OutOfBounds {
        /// Requested end offset.
        end: u64,
        /// Volume size.
        size: u64,
    },
    /// The underlying cluster failed the operation.
    Cluster(ClusterError),
}

impl std::fmt::Display for VdiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VdiError::OutOfBounds { end, size } => {
                write!(f, "access to byte {end} beyond volume size {size}")
            }
            VdiError::Cluster(e) => write!(f, "cluster error: {e}"),
        }
    }
}

impl std::error::Error for VdiError {}

impl VirtualDisk {
    /// Bits reserved for the stripe index within an object id.
    const STRIPE_BITS: u32 = 40;

    /// Create a volume of `size` bytes striped into `object_size` chunks.
    ///
    /// # Panics
    /// Panics on a zero `object_size` or zero `size`, or if the volume
    /// needs more stripes than the 40-bit stripe index can address.
    pub fn create(cluster: Arc<Cluster>, vdi_id: u32, size: u64, object_size: u64) -> Self {
        assert!(
            object_size > 0 && size > 0,
            "volume and stripe must be nonzero"
        );
        let stripes = size.div_ceil(object_size);
        assert!(
            stripes < (1u64 << Self::STRIPE_BITS),
            "volume needs too many stripes"
        );
        VirtualDisk {
            cluster,
            vdi_id,
            object_size,
            size,
        }
    }

    /// Volume size in bytes.
    pub fn size(&self) -> u64 {
        self.size
    }

    /// Stripe size in bytes.
    pub fn object_size(&self) -> u64 {
        self.object_size
    }

    /// Number of stripes the volume spans.
    pub fn stripe_count(&self) -> u64 {
        self.size.div_ceil(self.object_size)
    }

    /// Object id of the stripe containing byte `offset`.
    pub fn object_for(&self, offset: u64) -> ObjectId {
        let stripe = offset / self.object_size;
        ObjectId(((self.vdi_id as u64) << Self::STRIPE_BITS) | stripe)
    }

    fn check_bounds(&self, offset: u64, len: u64) -> Result<(), VdiError> {
        let end = offset.saturating_add(len);
        if end > self.size {
            return Err(VdiError::OutOfBounds {
                end,
                size: self.size,
            });
        }
        Ok(())
    }

    /// Read `len` bytes at `offset`. Unwritten stripes read as zeros.
    pub fn read_at(&self, offset: u64, len: usize) -> Result<Vec<u8>, VdiError> {
        self.check_bounds(offset, len as u64)?;
        let mut out = Vec::with_capacity(len);
        let mut pos = offset;
        let end = offset + len as u64;
        while pos < end {
            let stripe_off = pos % self.object_size;
            let take = ((self.object_size - stripe_off) as usize).min((end - pos) as usize);
            match self.cluster.get(self.object_for(pos)) {
                Ok(data) => {
                    // Stored stripes may be shorter than object_size if
                    // only a prefix was ever written; pad with zeros.
                    let lo = stripe_off as usize;
                    for i in 0..take {
                        out.push(data.get(lo + i).copied().unwrap_or(0));
                    }
                }
                Err(ClusterError::NotFound) => out.extend(std::iter::repeat_n(0u8, take)),
                Err(e) => return Err(VdiError::Cluster(e)),
            }
            pos += take as u64;
        }
        Ok(out)
    }

    /// Write `data` at `offset`, read-modify-writing partial stripes.
    pub fn write_at(&self, offset: u64, data: &[u8]) -> Result<(), VdiError> {
        self.check_bounds(offset, data.len() as u64)?;
        let mut pos = offset;
        let mut src = 0usize;
        let end = offset + data.len() as u64;
        while pos < end {
            let stripe_off = (pos % self.object_size) as usize;
            let take = ((self.object_size as usize) - stripe_off).min((end - pos) as usize);
            let oid = self.object_for(pos);
            // Full-stripe writes skip the read; partial ones merge.
            let buf: Vec<u8> = if stripe_off == 0 && take == self.object_size as usize {
                data[src..src + take].to_vec()
            } else {
                let mut existing = match self.cluster.get(oid) {
                    Ok(d) => d.to_vec(),
                    Err(ClusterError::NotFound) => Vec::new(),
                    Err(e) => return Err(VdiError::Cluster(e)),
                };
                let needed = stripe_off + take;
                if existing.len() < needed {
                    existing.resize(needed, 0);
                }
                existing[stripe_off..needed].copy_from_slice(&data[src..src + take]);
                existing
            };
            self.cluster
                .put(oid, Bytes::from(buf))
                .map_err(VdiError::Cluster)?;
            pos += take as u64;
            src += take;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterConfig;

    const KB: u64 = 1024;

    fn disk() -> VirtualDisk {
        let cluster = Cluster::new(ClusterConfig::paper());
        // Small stripes so tests cross boundaries cheaply.
        VirtualDisk::create(cluster, 7, 256 * KB, 16 * KB)
    }

    #[test]
    fn sparse_reads_are_zero() {
        let d = disk();
        let data = d.read_at(40 * KB, 1000).unwrap();
        assert_eq!(data, vec![0u8; 1000]);
    }

    #[test]
    fn aligned_roundtrip() {
        let d = disk();
        let payload: Vec<u8> = (0..16 * KB as usize).map(|i| (i % 251) as u8).collect();
        d.write_at(32 * KB, &payload).unwrap();
        assert_eq!(d.read_at(32 * KB, payload.len()).unwrap(), payload);
    }

    #[test]
    fn unaligned_write_crosses_stripes() {
        let d = disk();
        // 40 KB spanning three 16 KB stripes starting mid-stripe.
        let payload: Vec<u8> = (0..40 * KB as usize).map(|i| (i % 199) as u8 + 1).collect();
        d.write_at(10 * KB, &payload).unwrap();
        assert_eq!(d.read_at(10 * KB, payload.len()).unwrap(), payload);
        // Bytes before and after remain zero.
        assert_eq!(
            d.read_at(0, 10 * KB as usize).unwrap(),
            vec![0; 10 * KB as usize]
        );
        let after = d.read_at(50 * KB, 1024).unwrap();
        assert_eq!(after, vec![0; 1024]);
    }

    #[test]
    fn read_modify_write_preserves_neighbours() {
        let d = disk();
        d.write_at(0, &[0xAA; 16 * 1024]).unwrap();
        // Overwrite the middle 4 KB of the stripe.
        d.write_at(6 * KB, &[0xBB; 4 * 1024]).unwrap();
        let back = d.read_at(0, 16 * 1024).unwrap();
        assert!(back[..6 * 1024].iter().all(|&b| b == 0xAA));
        assert!(back[6 * 1024..10 * 1024].iter().all(|&b| b == 0xBB));
        assert!(back[10 * 1024..].iter().all(|&b| b == 0xAA));
    }

    #[test]
    fn out_of_bounds_is_rejected() {
        let d = disk();
        assert!(matches!(
            d.read_at(250 * KB, 10 * KB as usize),
            Err(VdiError::OutOfBounds { .. })
        ));
        assert!(matches!(
            d.write_at(256 * KB, &[1]),
            Err(VdiError::OutOfBounds { .. })
        ));
        // Exactly at the end is fine.
        d.write_at(255 * KB, &[1; 1024]).unwrap();
    }

    #[test]
    fn volume_survives_power_cycling() {
        let cluster = Cluster::new(ClusterConfig::paper());
        let d = VirtualDisk::create(cluster.clone(), 1, 512 * KB, 16 * KB);
        let payload: Vec<u8> = (0..100 * KB as usize).map(|i| (i % 253) as u8).collect();
        d.write_at(3 * KB, &payload).unwrap();
        cluster.resize(2);
        assert_eq!(d.read_at(3 * KB, payload.len()).unwrap(), payload);
        // Write more while scaled down (offloaded + dirty), size up,
        // re-integrate, verify both generations.
        let more: Vec<u8> = (0..50 * KB as usize).map(|i| (i % 127) as u8 + 1).collect();
        d.write_at(200 * KB, &more).unwrap();
        cluster.resize(10);
        cluster.reintegrate_all();
        assert_eq!(d.read_at(3 * KB, payload.len()).unwrap(), payload);
        assert_eq!(d.read_at(200 * KB, more.len()).unwrap(), more);
        assert_eq!(cluster.dirty_len(), 0);
    }

    #[test]
    fn distinct_vdis_do_not_collide() {
        let cluster = Cluster::new(ClusterConfig::paper());
        let a = VirtualDisk::create(cluster.clone(), 1, 128 * KB, 16 * KB);
        let b = VirtualDisk::create(cluster, 2, 128 * KB, 16 * KB);
        a.write_at(0, &[1; 1024]).unwrap();
        b.write_at(0, &[2; 1024]).unwrap();
        assert!(a.read_at(0, 1024).unwrap().iter().all(|&x| x == 1));
        assert!(b.read_at(0, 1024).unwrap().iter().all(|&x| x == 2));
        assert_ne!(a.object_for(0), b.object_for(0));
    }

    #[test]
    fn object_ids_follow_the_sheepdog_packing() {
        let d = disk();
        let first = d.object_for(0);
        let second = d.object_for(16 * KB);
        assert_eq!(second.raw(), first.raw() + 1);
        assert_eq!(first.raw() >> 40, 7, "vdi id in the high bits");
    }
}
