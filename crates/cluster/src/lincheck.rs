//! Linearizability-recording facade over the `Cluster` public API.
//!
//! Mirrors the [`crate::sync`] facade's cfg discipline: with the
//! `lincheck` feature the hooks feed `ech-lincheck`'s process-global
//! recorder; without it every hook is an empty `#[inline]` shim and
//! the data path compiles to exactly the un-instrumented code (CI
//! grep-gates that this module is the only place in the crate that
//! names `ech_lincheck`).
//!
//! Hooks deliberately do **not** touch the instrumented sync
//! primitives: recording must not add yield points or footprint
//! accesses, or installing a recorder would perturb the schedule
//! spaces the model checker explores (and break byte-identical trace
//! regressions). Timestamps come from the cluster's own clock, so
//! recorded histories line up with the VirtualClock the suites run on.

#[cfg(feature = "lincheck")]
mod armed {
    use crate::cluster::{ClusterError, ReintegrationStats};
    use crate::fault::Clock;
    use crate::repair::RepairStats;
    use bytes::Bytes;
    use ech_core::ids::{ObjectId, VersionId};
    pub use ech_lincheck::recorder::Span;
    use ech_lincheck::{Op, Ret};

    fn now(clock: &dyn Clock) -> u64 {
        clock.now().as_nanos() as u64
    }

    /// Record a `put` invocation (any write entry point).
    pub fn inv_put(oid: ObjectId, data: &Bytes, clock: &dyn Clock) -> Span {
        if !ech_lincheck::recorder::active() {
            return Span::disarmed();
        }
        let val = ech_lincheck::recorder::intern(data);
        ech_lincheck::recorder::invoke(
            Op::Put {
                key: oid.raw(),
                val,
            },
            now(clock),
        )
    }

    /// Record a `put` response. An error leaves the write's effect
    /// uncertain — the checker branches both ways — so every failure
    /// maps to [`Ret::Err`]; only an ack is a commitment.
    pub fn ret_put<T>(span: Span, result: &Result<T, ClusterError>, clock: &dyn Clock) {
        let r = match result {
            Ok(_) => Ret::Ok,
            Err(_) => Ret::Err,
        };
        ech_lincheck::recorder::ret(span, r, now(clock));
    }

    /// Record an ack *now*, before the write body runs — only seeded
    /// mutants call this; it is the ack-before-log bug made explicit.
    pub fn ret_put_premature(span: Span, clock: &dyn Clock) {
        ech_lincheck::recorder::ret(span, Ret::Ok, now(clock));
    }

    /// Record a `get` invocation (any read entry point).
    pub fn inv_get(oid: ObjectId, clock: &dyn Clock) -> Span {
        if !ech_lincheck::recorder::active() {
            return Span::disarmed();
        }
        ech_lincheck::recorder::invoke(Op::Get { key: oid.raw() }, now(clock))
    }

    /// Record a `get` response. `ClusterError::NotFound` is the
    /// cluster's *authoritative* miss and is recorded as such — every
    /// other failure (transient faults, quorum shortfalls, spent
    /// deadlines, placement races) is information-free.
    pub fn ret_get(span: Span, result: &Result<Bytes, ClusterError>, clock: &dyn Clock) {
        let r = match result {
            Ok(data) => Ret::Val(ech_lincheck::recorder::intern(data)),
            Err(ClusterError::NotFound) => Ret::NotFound,
            Err(_) => Ret::Unavailable,
        };
        ech_lincheck::recorder::ret(span, r, now(clock));
    }

    /// Record a `resize` invocation (an atomic view transition).
    pub fn inv_resize(active: usize, clock: &dyn Clock) -> Span {
        if !ech_lincheck::recorder::active() {
            return Span::disarmed();
        }
        ech_lincheck::recorder::invoke(
            Op::Resize {
                active: active as u32,
            },
            now(clock),
        )
    }

    /// Record a `resize` response.
    pub fn ret_resize(span: Span, _version: VersionId, clock: &dyn Clock) {
        ech_lincheck::recorder::ret(span, Ret::Ok, now(clock));
    }

    /// Record a fallible `resize` response (seeded mutants).
    pub fn ret_resize_result<T>(span: Span, result: &Result<T, ClusterError>, clock: &dyn Clock) {
        let r = match result {
            Ok(_) => Ret::Ok,
            Err(_) => Ret::Err,
        };
        ech_lincheck::recorder::ret(span, r, now(clock));
    }

    /// Record a `heal_dirty` invocation (spec-level no-op).
    pub fn inv_heal(clock: &dyn Clock) -> Span {
        if !ech_lincheck::recorder::active() {
            return Span::disarmed();
        }
        ech_lincheck::recorder::invoke(Op::Heal, now(clock))
    }

    /// Record a `heal_dirty` response.
    pub fn ret_heal(span: Span, _stats: &RepairStats, clock: &dyn Clock) {
        ech_lincheck::recorder::ret(span, Ret::Ok, now(clock));
    }

    /// Record a re-integration invocation (step, batch or full drain —
    /// all spec-level no-ops).
    pub fn inv_reintegrate(clock: &dyn Clock) -> Span {
        if !ech_lincheck::recorder::active() {
            return Span::disarmed();
        }
        ech_lincheck::recorder::invoke(Op::Reintegrate, now(clock))
    }

    /// Record a re-integration response (idle is still an ack: the
    /// no-op happened, observably nothing changed).
    pub fn ret_reintegrate<E>(
        span: Span,
        _result: &Result<ReintegrationStats, E>,
        clock: &dyn Clock,
    ) {
        ech_lincheck::recorder::ret(span, Ret::Ok, now(clock));
    }

    /// Record a full-drain response.
    pub fn ret_reintegrate_all(span: Span, _stats: &ReintegrationStats, clock: &dyn Clock) {
        ech_lincheck::recorder::ret(span, Ret::Ok, now(clock));
    }
}

#[cfg(feature = "lincheck")]
pub use armed::*;

#[cfg(not(feature = "lincheck"))]
mod disarmed {
    use crate::cluster::{ClusterError, ReintegrationStats};
    use crate::fault::Clock;
    use crate::repair::RepairStats;
    use bytes::Bytes;
    use ech_core::ids::{ObjectId, VersionId};

    /// Zero-sized stand-in for the recorder span; every hook below is
    /// an empty inline shim the optimiser erases.
    #[derive(Debug, Clone, Copy)]
    pub struct Span;

    /// No-op (production build).
    #[inline(always)]
    pub fn inv_put(_oid: ObjectId, _data: &Bytes, _clock: &dyn Clock) -> Span {
        Span
    }

    /// No-op (production build).
    #[inline(always)]
    pub fn ret_put<T>(_span: Span, _result: &Result<T, ClusterError>, _clock: &dyn Clock) {}

    /// No-op (production build).
    #[inline(always)]
    pub fn ret_put_premature(_span: Span, _clock: &dyn Clock) {}

    /// No-op (production build).
    #[inline(always)]
    pub fn inv_get(_oid: ObjectId, _clock: &dyn Clock) -> Span {
        Span
    }

    /// No-op (production build).
    #[inline(always)]
    pub fn ret_get(_span: Span, _result: &Result<Bytes, ClusterError>, _clock: &dyn Clock) {}

    /// No-op (production build).
    #[inline(always)]
    pub fn inv_resize(_active: usize, _clock: &dyn Clock) -> Span {
        Span
    }

    /// No-op (production build).
    #[inline(always)]
    pub fn ret_resize(_span: Span, _version: VersionId, _clock: &dyn Clock) {}

    /// No-op (production build).
    #[inline(always)]
    pub fn ret_resize_result<T>(
        _span: Span,
        _result: &Result<T, ClusterError>,
        _clock: &dyn Clock,
    ) {
    }

    /// No-op (production build).
    #[inline(always)]
    pub fn inv_heal(_clock: &dyn Clock) -> Span {
        Span
    }

    /// No-op (production build).
    #[inline(always)]
    pub fn ret_heal(_span: Span, _stats: &RepairStats, _clock: &dyn Clock) {}

    /// No-op (production build).
    #[inline(always)]
    pub fn inv_reintegrate(_clock: &dyn Clock) -> Span {
        Span
    }

    /// No-op (production build).
    #[inline(always)]
    pub fn ret_reintegrate<E>(
        _span: Span,
        _result: &Result<ReintegrationStats, E>,
        _clock: &dyn Clock,
    ) {
    }

    /// No-op (production build).
    #[inline(always)]
    pub fn ret_reintegrate_all(_span: Span, _stats: &ReintegrationStats, _clock: &dyn Clock) {}
}

#[cfg(not(feature = "lincheck"))]
pub use disarmed::*;
