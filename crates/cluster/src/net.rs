//! The deterministic network fault plane: message-level faults between
//! the coordinator and the storage nodes.
//!
//! The node-op injector ([`crate::fault`]) faults the *disk* side of an
//! operation; this module faults the *messages* that carry it: per-link
//! drop / duplicate / reorder / delay distributions and scripted
//! (possibly asymmetric) partition windows. Every probabilistic verdict
//! is a pure hash of `(seed, link, per-link message counter)` and every
//! window is keyed on the cluster's injected [`Clock`], so a drill on a
//! [`crate::fault::VirtualClock`] is wall-clock-free end to end: the
//! same plan and the same send order reproduce the same verdicts.
//!
//! The fabric only *decides*; the cluster's rpc layer executes the
//! verdict. A lost message costs the sender the plan's rpc timeout (on
//! the clock) before it surfaces as [`crate::node::NodeError::Timeout`]
//! — that cost is what makes per-operation deadline budgets bite, and
//! what the per-replica circuit breaker ([`ReplicaBreakers`]) exists to
//! stop paying over and over against a partitioned replica.
//!
//! Message kinds routed through the fabric are the data-plane puts and
//! gets (client writes/reads, healing, repair and re-integration
//! copies). Replica removes and header restamps are reconciliation
//! messages the coordinator can repeat at will; they are modelled as a
//! reliable queue and bypass the fabric (see DESIGN §8).

use crate::fault::{splitmix64, unit, Clock};
use crate::sync::{counter_u64, AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Golden-gamma Weyl increment: steps a per-link SplitMix64 stream by
/// message number, same construction as the node-op injector.
const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// Salts separating the per-message decision rolls (drop, lost side,
/// duplicate, delay, reorder) so one stream value yields independent
/// verdicts.
const SALT_DROP: u64 = 0x4445_4C49_5645_5201;
const SALT_SIDE: u64 = 0x4445_4C49_5645_5202;
const SALT_DUP: u64 = 0x4445_4C49_5645_5203;
const SALT_DELAY: u64 = 0x4445_4C49_5645_5204;
const SALT_REORDER: u64 = 0x4445_4C49_5645_5205;

/// Message-fault behaviour of one coordinator→node link. The default is
/// a fault-free link: zero probabilities, no delay.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LinkFaultSpec {
    /// Probability that a message is lost in flight. Half the losses
    /// take the request (the op never executes), half take the response
    /// (the op executes but the sender never learns) — the asymmetry
    /// that makes at-least-once retries observable.
    pub drop_prob: f64,
    /// Probability that a delivered request is retransmitted and
    /// executes twice (node ops are idempotent, so only the op counters
    /// observe the duplicate).
    pub dup_prob: f64,
    /// Probability that a delivered message is overtaken by logically
    /// later traffic. In a synchronous rpc plane a reordering surfaces
    /// as the overtaken message's extra latency, so the fabric models it
    /// as an added delay of one full delay span.
    pub reorder_prob: f64,
    /// Per-message latency, uniform in `[min, max]`, charged to the
    /// sender's clock. `None` delivers instantly.
    pub delay: Option<(Duration, Duration)>,
}

/// Which direction of a partition window is cut, relative to the
/// isolated set. The coordinator sits on the majority side.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PartitionDirection {
    /// No traffic crosses the cut in either direction.
    #[default]
    Both,
    /// Messages *into* the isolated set are lost; with coordinator-
    /// initiated rpc this cuts requests before they execute.
    Inbound,
    /// Messages *out of* the isolated set are lost: requests still reach
    /// an isolated node and execute, but the response never returns —
    /// the sender times out on an op that actually happened.
    Outbound,
}

/// A scripted partition: between `from` (inclusive) and `until`
/// (exclusive) on the injected clock, the `isolated` servers are cut off
/// from the coordinator in the given direction. Windows compose; any
/// covering window cuts the link.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionWindow {
    /// Window start on the injected clock.
    pub from: Duration,
    /// Window end (exclusive); `Duration::MAX` holds until an explicit
    /// [`NetFabric::heal_partitions`].
    pub until: Duration,
    /// Server indices on the minority side of the cut.
    pub isolated: Vec<u32>,
    /// Which direction of traffic the cut loses.
    pub direction: PartitionDirection,
}

impl PartitionWindow {
    /// Is the window active at `now`?
    pub fn covers(&self, now: Duration) -> bool {
        self.from <= now && now < self.until
    }

    /// Is server `index` on the isolated side?
    pub fn isolates(&self, index: u32) -> bool {
        self.isolated.contains(&index)
    }
}

/// A declarative message-fault schedule for every coordinator→node link.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct NetPlan {
    /// Seed of the decision hash; same seed + same send order = same
    /// verdicts.
    pub seed: u64,
    /// Fault spec applied to every link without an override.
    pub default_link: LinkFaultSpec,
    /// Per-destination overrides, indexed by server index; `None` falls
    /// back to `default_link`.
    pub links: Vec<Option<LinkFaultSpec>>,
    /// Scripted partition windows on the injected clock.
    pub partitions: Vec<PartitionWindow>,
    /// What a lost message costs the sender before it gives up — the
    /// budget a dropped or partitioned send burns from the operation's
    /// deadline.
    pub rpc_timeout: Duration,
}

impl NetPlan {
    /// A plan applying `spec` to every link (no partitions), with the
    /// default 2 ms rpc timeout.
    pub fn uniform(seed: u64, spec: LinkFaultSpec) -> Self {
        NetPlan {
            seed,
            default_link: spec,
            links: Vec::new(),
            partitions: Vec::new(),
            rpc_timeout: Self::default_rpc_timeout(),
        }
    }

    /// The default budget cost of a lost message, sized to the retry
    /// policy's sleep cap so one loss costs about one backoff step.
    pub fn default_rpc_timeout() -> Duration {
        Duration::from_millis(2)
    }

    /// Override link `index`'s spec (growing the override vector).
    pub fn set_link(&mut self, index: usize, spec: LinkFaultSpec) -> &mut Self {
        if self.links.len() <= index {
            self.links.resize(index + 1, None);
        }
        if let Some(slot) = self.links.get_mut(index) {
            *slot = Some(spec);
        }
        self
    }

    /// The effective spec of link `index`.
    pub fn link(&self, index: usize) -> &LinkFaultSpec {
        self.links
            .get(index)
            .and_then(|o| o.as_ref())
            .unwrap_or(&self.default_link)
    }

    /// The effective rpc timeout (zero in a plan built field-by-field
    /// falls back to the default so a lost message always costs budget).
    pub fn effective_rpc_timeout(&self) -> Duration {
        if self.rpc_timeout.is_zero() {
            Self::default_rpc_timeout()
        } else {
            self.rpc_timeout
        }
    }
}

/// The fabric's verdict on one message send.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendVerdict {
    /// Deliver, after an optional latency charge; `duplicate` requests
    /// execute twice.
    Deliver {
        /// Latency charged to the sender's clock before the op runs.
        delay: Option<Duration>,
        /// The request was retransmitted and executes a second time.
        duplicate: bool,
    },
    /// The request is lost in flight: the op never executes and the
    /// sender times out.
    DropRequest,
    /// The response is lost: the op executes but the sender times out
    /// anyway (at-least-once delivery made visible).
    DropResponse,
    /// A partition window cuts the link. With `request_delivered` the
    /// cut is outbound-only: the op executes, the ack is lost.
    Partitioned {
        /// The request crossed before the cut direction lost the reply.
        request_delivered: bool,
    },
}

/// Live message-fault counters (relaxed atomics; shared by `&`).
#[derive(Debug)]
struct NetStats {
    sends: AtomicU64,
    dropped: AtomicU64,
    duplicated: AtomicU64,
    delayed: AtomicU64,
    reordered: AtomicU64,
    partitioned_sends: AtomicU64,
}

impl Default for NetStats {
    fn default() -> Self {
        NetStats {
            sends: counter_u64(0),
            dropped: counter_u64(0),
            duplicated: counter_u64(0),
            delayed: counter_u64(0),
            reordered: counter_u64(0),
            partitioned_sends: counter_u64(0),
        }
    }
}

/// Plain-value copy of the fabric's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStatsSnapshot {
    /// Messages routed through the fabric.
    pub sends: u64,
    /// Messages lost in flight (requests and responses).
    pub dropped: u64,
    /// Requests delivered twice.
    pub duplicated: u64,
    /// Messages charged a latency delay.
    pub delayed: u64,
    /// Messages overtaken by later traffic (delivered late).
    pub reordered: u64,
    /// Sends refused by an active partition window.
    pub partitioned_sends: u64,
}

/// Executes a [`NetPlan`] deterministically.
///
/// Probabilistic verdicts are pure functions of `(seed, link, per-link
/// message counter)`; partition windows read the injected clock. The
/// counters are lock-free atomics, so concurrent senders perturb only
/// the interleaving of message numbers, never the verdict for a given
/// number.
#[derive(Debug)]
pub struct NetFabric {
    plan: NetPlan,
    link_ops: Vec<AtomicU64>,
    /// Set by [`NetFabric::heal_partitions`]: every partition window is
    /// ignored from then on (a scripted heal ahead of its window).
    healed: AtomicBool,
    stats: NetStats,
    clock: Arc<dyn Clock>,
}

impl NetFabric {
    /// A fabric for `nodes` links running `plan` on `clock`.
    pub fn new(nodes: usize, plan: NetPlan, clock: Arc<dyn Clock>) -> Self {
        NetFabric {
            link_ops: (0..nodes.max(plan.links.len()))
                .map(|_| counter_u64(0))
                .collect(),
            healed: AtomicBool::new(false),
            stats: NetStats::default(),
            plan,
            clock,
        }
    }

    /// The plan being executed.
    pub fn plan(&self) -> &NetPlan {
        &self.plan
    }

    /// The budget cost of a lost message.
    pub fn rpc_timeout(&self) -> Duration {
        self.plan.effective_rpc_timeout()
    }

    /// Heal every partition window immediately, regardless of its
    /// scripted end. Link-level faults (drops, delays, duplicates) keep
    /// running; only the cuts lift.
    pub fn heal_partitions(&self) {
        self.healed.store(true, Ordering::Release);
    }

    /// Is any partition window cutting traffic right now?
    pub fn partition_active(&self) -> bool {
        if self.healed.load(Ordering::Acquire) {
            return false;
        }
        let now = self.clock.now();
        self.plan.partitions.iter().any(|w| w.covers(now))
    }

    /// Counters of message faults injected so far.
    pub fn stats(&self) -> NetStatsSnapshot {
        NetStatsSnapshot {
            sends: self.stats.sends.load(Ordering::Relaxed),
            dropped: self.stats.dropped.load(Ordering::Relaxed),
            duplicated: self.stats.duplicated.load(Ordering::Relaxed),
            delayed: self.stats.delayed.load(Ordering::Relaxed),
            reordered: self.stats.reordered.load(Ordering::Relaxed),
            partitioned_sends: self.stats.partitioned_sends.load(Ordering::Relaxed),
        }
    }

    /// Decide the fate of the next message to server `dst`. Advances the
    /// link's message counter (partition verdicts do not consume a
    /// counter tick: the message never entered the link).
    pub fn before_send(&self, dst: usize) -> SendVerdict {
        self.stats.sends.fetch_add(1, Ordering::Relaxed);
        if !self.healed.load(Ordering::Acquire) {
            let now = self.clock.now();
            if let Some(w) = self
                .plan
                .partitions
                .iter()
                .find(|w| w.covers(now) && w.isolates(dst as u32))
            {
                self.stats.partitioned_sends.fetch_add(1, Ordering::Relaxed);
                return SendVerdict::Partitioned {
                    request_delivered: w.direction == PartitionDirection::Outbound,
                };
            }
        }
        let spec = self.plan.link(dst);
        let op = self
            .link_ops
            .get(dst)
            // ech-allow(D5): `c` is one of the per-link message counters
            // built with `counter_u64` in `new`; the closure binding
            // hides the constructed field from the counter
            // classification.
            .map_or(0, |c| c.fetch_add(1, Ordering::Relaxed));
        let lane = splitmix64(self.plan.seed ^ ((dst as u64) << 40) ^ 0x4E45_5446_4142_5249);
        let stream = lane.wrapping_add(op.wrapping_mul(GOLDEN_GAMMA));
        if spec.drop_prob > 0.0 && unit(splitmix64(stream ^ SALT_DROP)) < spec.drop_prob {
            self.stats.dropped.fetch_add(1, Ordering::Relaxed);
            return if splitmix64(stream ^ SALT_SIDE) & 1 == 0 {
                SendVerdict::DropRequest
            } else {
                SendVerdict::DropResponse
            };
        }
        let duplicate = spec.dup_prob > 0.0 && unit(splitmix64(stream ^ SALT_DUP)) < spec.dup_prob;
        if duplicate {
            self.stats.duplicated.fetch_add(1, Ordering::Relaxed);
        }
        let mut delay = None;
        if let Some((lo, hi)) = spec.delay {
            let lo_ns = lo.as_nanos() as u64;
            let hi_ns = (hi.as_nanos() as u64).max(lo_ns);
            let span = hi_ns - lo_ns;
            let jitter = if span > 0 {
                splitmix64(stream ^ SALT_DELAY) % (span + 1)
            } else {
                0
            };
            delay = Some(Duration::from_nanos(lo_ns + jitter));
            self.stats.delayed.fetch_add(1, Ordering::Relaxed);
        }
        if spec.reorder_prob > 0.0 && unit(splitmix64(stream ^ SALT_REORDER)) < spec.reorder_prob {
            // Late delivery: charge one extra delay span so logically
            // later messages overtake this one.
            let extra = spec
                .delay
                .map(|(_, hi)| hi)
                .unwrap_or_else(|| self.rpc_timeout() / 4);
            delay = Some(delay.unwrap_or(Duration::ZERO).saturating_add(extra));
            self.stats.reordered.fetch_add(1, Ordering::Relaxed);
        }
        SendVerdict::Deliver { delay, duplicate }
    }
}

/// Circuit-breaker configuration for per-replica health tracking.
///
/// States per replica: **Closed** (healthy, every send allowed) →
/// **Open** after `failure_threshold` consecutive message-level failures
/// (sends fail fast with `BreakerOpen` instead of burning an rpc timeout
/// each) → **HalfOpen** once `cooldown` elapses on the injected clock
/// (the next send probes the link; success closes the breaker, failure
/// re-opens it for another cooldown).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive failures that trip the breaker open.
    pub failure_threshold: u64,
    /// How long an open breaker rejects sends before allowing a probe.
    pub cooldown: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 4,
            cooldown: Duration::from_millis(10),
        }
    }
}

/// Per-replica breaker state: consecutive-failure count and the clock
/// reading until which the breaker stays open.
#[derive(Debug)]
struct BreakerState {
    fails: AtomicU64,
    open_until_nanos: AtomicU64,
}

/// Per-replica health table with a circuit breaker per server.
///
/// The rpc layer consults [`ReplicaBreakers::try_acquire`] before every
/// send and reports the outcome back; an open breaker converts repeated
/// rpc-timeout burns against a partitioned replica into immediate
/// `BreakerOpen` failures, which quorum writes then record as ordinary
/// misses (dirty-table entries) — degrading instead of stalling.
#[derive(Debug)]
pub struct ReplicaBreakers {
    cfg: BreakerConfig,
    states: Vec<BreakerState>,
    trips: AtomicU64,
    fastfails: AtomicU64,
}

impl ReplicaBreakers {
    /// A breaker table for `nodes` replicas.
    pub fn new(nodes: usize, cfg: BreakerConfig) -> Self {
        ReplicaBreakers {
            cfg,
            states: (0..nodes)
                .map(|_| BreakerState {
                    fails: counter_u64(0),
                    open_until_nanos: counter_u64(0),
                })
                .collect(),
            trips: counter_u64(0),
            fastfails: counter_u64(0),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &BreakerConfig {
        &self.cfg
    }

    /// May a send to replica `index` proceed at clock reading `now`?
    /// `false` means the breaker is open; the denial is counted.
    pub fn try_acquire(&self, index: usize, now: Duration) -> bool {
        let Some(s) = self.states.get(index) else {
            return true;
        };
        // ech-allow(D5): `open_until_nanos` is built with `counter_u64`;
        // the `.get` binding hides the constructed field.
        let open = (now.as_nanos() as u64) < s.open_until_nanos.load(Ordering::Relaxed);
        if open {
            self.fastfails.fetch_add(1, Ordering::Relaxed);
        }
        !open
    }

    /// Is replica `index`'s breaker open at `now`? (No side effects.)
    pub fn is_open(&self, index: usize, now: Duration) -> bool {
        self.states.get(index).is_some_and(|s| {
            // ech-allow(D5): counter_u64-built field behind `.get`.
            (now.as_nanos() as u64) < s.open_until_nanos.load(Ordering::Relaxed)
        })
    }

    /// Record a successful send: the breaker closes and the failure
    /// streak resets.
    pub fn record_success(&self, index: usize) {
        if let Some(s) = self.states.get(index) {
            // ech-allow(D5): counter reset on recovery; both fields are
            // counter_u64-built and read with Relaxed only.
            s.fails.store(0, Ordering::Relaxed);
            s.open_until_nanos.store(0, Ordering::Relaxed);
        }
    }

    /// Record a message-level failure at clock reading `now`. Reaching
    /// the threshold (re-)opens the breaker for one cooldown; a trip is
    /// counted only when the breaker was not already holding the link
    /// open.
    pub fn record_failure(&self, index: usize, now: Duration) {
        let Some(s) = self.states.get(index) else {
            return;
        };
        let fails = s.fails.fetch_add(1, Ordering::Relaxed) + 1;
        if fails >= self.cfg.failure_threshold.max(1) {
            let now_ns = now.as_nanos() as u64;
            let until = now_ns.saturating_add(self.cfg.cooldown.as_nanos() as u64);
            // ech-allow(D5): counter_u64-built field; the previous
            // deadline distinguishes a fresh trip from extending an
            // already-open window. The load/store pair is not atomic —
            // two racing failures may both count a trip — which is an
            // acceptable slack for a diagnostic counter.
            let prev = s.open_until_nanos.load(Ordering::Relaxed);
            s.open_until_nanos.store(until, Ordering::Relaxed);
            if prev <= now_ns {
                self.trips.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Counters: breaker trips and fast-failed sends, plus how many
    /// breakers are open at `now`.
    pub fn snapshot(&self, now: Duration) -> BreakerSnapshot {
        let now_ns = now.as_nanos() as u64;
        BreakerSnapshot {
            trips: self.trips.load(Ordering::Relaxed),
            fastfails: self.fastfails.load(Ordering::Relaxed),
            open_now: self
                .states
                .iter()
                // ech-allow(D5): counter_u64-built field behind iter.
                .filter(|s| now_ns < s.open_until_nanos.load(Ordering::Relaxed))
                .count(),
        }
    }
}

/// Plain-value copy of the breaker counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BreakerSnapshot {
    /// Times a breaker tripped open.
    pub trips: u64,
    /// Sends rejected fast by an open breaker.
    pub fastfails: u64,
    /// Breakers open at snapshot time.
    pub open_now: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::VirtualClock;

    fn fabric(plan: NetPlan) -> (NetFabric, Arc<VirtualClock>) {
        let clock = Arc::new(VirtualClock::new());
        (NetFabric::new(4, plan, clock.clone()), clock)
    }

    #[test]
    fn verdicts_are_deterministic_per_message_number() {
        let plan = NetPlan::uniform(
            42,
            LinkFaultSpec {
                drop_prob: 0.3,
                dup_prob: 0.1,
                reorder_prob: 0.1,
                delay: Some((Duration::from_micros(10), Duration::from_micros(90))),
            },
        );
        let (a, _) = fabric(plan.clone());
        let (b, _) = fabric(plan);
        let run =
            |f: &NetFabric| -> Vec<SendVerdict> { (0..300).map(|_| f.before_send(2)).collect() };
        assert_eq!(run(&a), run(&b));
        let s = a.stats();
        assert!(s.dropped > 0 && s.dropped < 300, "0.3 over 300 must bite");
        assert!(s.duplicated > 0);
        assert!(s.reordered > 0);
    }

    #[test]
    fn drop_rate_tracks_probability() {
        let plan = NetPlan::uniform(
            7,
            LinkFaultSpec {
                drop_prob: 0.10,
                ..LinkFaultSpec::default()
            },
        );
        let (f, _) = fabric(plan);
        let n = 20_000;
        for _ in 0..n {
            f.before_send(0);
        }
        let rate = f.stats().dropped as f64 / n as f64;
        assert!((rate - 0.10).abs() < 0.01, "observed drop rate {rate}");
    }

    #[test]
    fn delays_stay_in_the_configured_band() {
        let lo = Duration::from_micros(20);
        let hi = Duration::from_micros(120);
        let plan = NetPlan::uniform(
            3,
            LinkFaultSpec {
                delay: Some((lo, hi)),
                ..LinkFaultSpec::default()
            },
        );
        let (f, _) = fabric(plan);
        for _ in 0..500 {
            match f.before_send(1) {
                SendVerdict::Deliver {
                    delay: Some(d),
                    duplicate,
                } => {
                    assert!((lo..=hi).contains(&d), "delay {d:?} out of band");
                    assert!(!duplicate);
                }
                other => panic!("expected a delayed delivery, got {other:?}"),
            }
        }
        assert_eq!(f.stats().delayed, 500);
    }

    #[test]
    fn partition_window_cuts_by_direction_and_heals_on_time() {
        let plan = NetPlan {
            partitions: vec![
                PartitionWindow {
                    from: Duration::from_millis(1),
                    until: Duration::from_millis(3),
                    isolated: vec![2],
                    direction: PartitionDirection::Both,
                },
                PartitionWindow {
                    from: Duration::from_millis(1),
                    until: Duration::from_millis(3),
                    isolated: vec![3],
                    direction: PartitionDirection::Outbound,
                },
            ],
            ..NetPlan::default()
        };
        let (f, clock) = fabric(plan);
        // Before the window: everything delivers.
        assert!(matches!(f.before_send(2), SendVerdict::Deliver { .. }));
        assert!(!f.partition_active());
        clock.advance(Duration::from_millis(2));
        assert!(f.partition_active());
        assert_eq!(
            f.before_send(2),
            SendVerdict::Partitioned {
                request_delivered: false
            },
            "a Both cut loses the request"
        );
        assert_eq!(
            f.before_send(3),
            SendVerdict::Partitioned {
                request_delivered: true
            },
            "an Outbound cut delivers the request but loses the ack"
        );
        // Unrelated links are untouched.
        assert!(matches!(f.before_send(0), SendVerdict::Deliver { .. }));
        // The window closes on the clock.
        clock.advance(Duration::from_millis(2));
        assert!(!f.partition_active());
        assert!(matches!(f.before_send(2), SendVerdict::Deliver { .. }));
        assert_eq!(f.stats().partitioned_sends, 2);
    }

    #[test]
    fn heal_partitions_overrides_open_windows() {
        let plan = NetPlan {
            partitions: vec![PartitionWindow {
                from: Duration::ZERO,
                until: Duration::MAX,
                isolated: vec![0, 1],
                direction: PartitionDirection::Both,
            }],
            ..NetPlan::default()
        };
        let (f, _) = fabric(plan);
        assert!(f.partition_active());
        assert!(matches!(f.before_send(0), SendVerdict::Partitioned { .. }));
        f.heal_partitions();
        assert!(!f.partition_active());
        assert!(matches!(f.before_send(0), SendVerdict::Deliver { .. }));
    }

    #[test]
    fn link_overrides_fall_back_to_the_default_spec() {
        let mut plan = NetPlan::uniform(
            9,
            LinkFaultSpec {
                drop_prob: 1.0,
                ..LinkFaultSpec::default()
            },
        );
        plan.set_link(1, LinkFaultSpec::default());
        let (f, _) = fabric(plan);
        assert!(matches!(f.before_send(1), SendVerdict::Deliver { .. }));
        assert!(matches!(f.before_send(1), SendVerdict::Deliver { .. }));
        assert!(!matches!(f.before_send(0), SendVerdict::Deliver { .. }));
    }

    #[test]
    fn breaker_opens_after_threshold_and_half_opens_after_cooldown() {
        let cfg = BreakerConfig {
            failure_threshold: 3,
            cooldown: Duration::from_millis(5),
        };
        let b = ReplicaBreakers::new(2, cfg);
        let t0 = Duration::ZERO;
        assert!(b.try_acquire(0, t0));
        b.record_failure(0, t0);
        b.record_failure(0, t0);
        assert!(b.try_acquire(0, t0), "below threshold stays closed");
        b.record_failure(0, t0);
        assert!(!b.try_acquire(0, t0), "third consecutive failure trips it");
        assert!(b.is_open(0, t0));
        assert!(b.try_acquire(1, t0), "other replicas unaffected");
        let snap = b.snapshot(t0);
        assert_eq!(snap.trips, 1);
        assert_eq!(snap.fastfails, 1);
        assert_eq!(snap.open_now, 1);
        // Cooldown elapses: half-open, one probe allowed.
        let t1 = Duration::from_millis(6);
        assert!(b.try_acquire(0, t1));
        // Probe fails: re-opens immediately (streak still past the
        // threshold) and counts a fresh trip.
        b.record_failure(0, t1);
        assert!(!b.try_acquire(0, t1));
        assert_eq!(b.snapshot(t1).trips, 2);
        // Next probe succeeds: breaker closes fully.
        let t2 = Duration::from_millis(12);
        assert!(b.try_acquire(0, t2));
        b.record_success(0);
        b.record_failure(0, t2);
        assert!(
            b.try_acquire(0, t2),
            "one failure after a success must not trip a reset breaker"
        );
    }
}
