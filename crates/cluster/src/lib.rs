//! # ech-cluster — a live elastic object-store cluster
//!
//! The executable counterpart of the paper's modified Sheepdog testbed
//! (§IV): an in-process, multi-threaded object store whose data path runs
//! the real elastic-consistent-hashing machinery end to end —
//!
//! * placement by Algorithm 1 (or original CH) from `ech-core`;
//! * membership versioning on every resize; powered-down nodes keep
//!   their data and simply stop serving;
//! * write-availability offloading (placement skips inactive nodes) with
//!   dirty logging into a Redis-like store (`ech-kvstore`) via
//!   RPUSH/LINDEX/LPOP, exactly as §IV describes;
//! * selective re-integration executing real replica copies, one task at
//!   a time, optionally from a background worker thread.
//!
//! ```
//! use ech_cluster::{Cluster, ClusterConfig};
//! use ech_core::ids::ObjectId;
//! use bytes::Bytes;
//!
//! let cluster = Cluster::new(ClusterConfig::paper());
//! cluster.put(ObjectId(10010), Bytes::from("hello")).unwrap();
//! cluster.resize(2); // power down to the primaries — no cleanup needed
//! assert_eq!(cluster.get(ObjectId(10010)).unwrap(), Bytes::from("hello"));
//! ```

pub mod cluster;
pub mod dirty_store;
pub mod fault;
pub mod lincheck;
pub mod net;
pub mod node;
pub mod repair;
pub mod retry;
pub mod sync;
pub mod vdi;

pub use cluster::{
    Cluster, ClusterConfig, ClusterError, ReadPolicy, ReintegrationStats, WriteQuorum,
};
pub use dirty_store::{KvDirtyTable, KvHeaderStore};
pub use fault::{
    Clock, FaultInjector, FaultPlan, FaultStatsSnapshot, InjectedFault, NodeFaultSpec, ShardOutage,
    SystemClock, VirtualClock,
};
pub use net::{
    BreakerConfig, BreakerSnapshot, LinkFaultSpec, NetFabric, NetPlan, NetStatsSnapshot,
    PartitionDirection, PartitionWindow, ReplicaBreakers, SendVerdict,
};
pub use node::{NodeError, StorageNode, StoredObject};
pub use repair::RepairStats;
pub use retry::{Deadline, RetryPolicy};
pub use vdi::{VdiError, VirtualDisk};
