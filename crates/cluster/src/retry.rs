//! Bounded retries with decorrelated jitter.
//!
//! Transient faults (injected I/O errors, kv shard brown-outs) are
//! absorbed by a small, budgeted retry loop. Backoff follows the
//! decorrelated-jitter rule — `sleep = min(cap, uniform(base, 3 * prev))`
//! — which spreads contending retriers apart without the synchronised
//! thundering herds of plain exponential backoff. The jitter stream is
//! seeded from a caller-supplied token (typically the object id), so a
//! deterministic fault schedule yields a deterministic retry schedule.

use crate::fault::splitmix64;
use std::time::Duration;

/// A bounded retry policy. `Default` gives every operation 4 attempts
/// with sleeps between 100 µs and 2 ms — sized for an in-process store
/// where "I/O" is a lock acquisition, not a disk seek.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (first try included). `1` disables retries.
    pub max_attempts: u32,
    /// Minimum sleep between attempts.
    pub base: Duration,
    /// Per-sleep cap; also bounds the op's total budget at
    /// `(max_attempts - 1) * cap`.
    pub cap: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base: Duration::from_micros(100),
            cap: Duration::from_millis(2),
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        }
    }

    /// Run `op`, retrying while `retryable` approves the error and
    /// attempts remain. Returns the final result and the number of
    /// retries spent (0 = first try decided).
    pub fn run_counted<T, E>(
        &self,
        token: u64,
        retryable: impl Fn(&E) -> bool,
        mut op: impl FnMut() -> Result<T, E>,
    ) -> (Result<T, E>, u32) {
        let attempts = self.max_attempts.max(1);
        let mut rng = splitmix64(token ^ 0x5EED_0F0F_5EED_0F0F);
        let mut prev = self.base;
        for retry in 0..attempts {
            match op() {
                Ok(v) => return (Ok(v), retry),
                Err(e) if retry + 1 < attempts && retryable(&e) => {
                    rng = splitmix64(rng);
                    let base_ns = self.base.as_nanos() as u64;
                    let span =
                        (prev.as_nanos() as u64).saturating_mul(3).max(base_ns + 1) - base_ns;
                    let sleep_ns = (base_ns + rng % span).min(self.cap.as_nanos() as u64);
                    prev = Duration::from_nanos(sleep_ns);
                    std::thread::sleep(prev);
                }
                Err(e) => return (Err(e), retry),
            }
        }
        unreachable!("loop returns on the last attempt");
    }

    /// [`RetryPolicy::run_counted`] without the retry count.
    pub fn run<T, E>(
        &self,
        token: u64,
        retryable: impl Fn(&E) -> bool,
        op: impl FnMut() -> Result<T, E>,
    ) -> Result<T, E> {
        self.run_counted(token, retryable, op).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn succeeds_first_try_without_sleeping() {
        let p = RetryPolicy::default();
        let (r, retries) = p.run_counted(1, |_: &()| true, || Ok::<_, ()>(7));
        assert_eq!(r, Ok(7));
        assert_eq!(retries, 0);
    }

    #[test]
    fn retries_transient_errors_until_success() {
        let p = RetryPolicy {
            max_attempts: 5,
            base: Duration::from_micros(1),
            cap: Duration::from_micros(10),
        };
        let mut calls = 0;
        let (r, retries) = p.run_counted(
            9,
            |_: &&str| true,
            || {
                calls += 1;
                if calls < 3 {
                    Err("transient")
                } else {
                    Ok(calls)
                }
            },
        );
        assert_eq!(r, Ok(3));
        assert_eq!(retries, 2);
    }

    #[test]
    fn exhausts_budget_and_returns_last_error() {
        let p = RetryPolicy {
            max_attempts: 3,
            base: Duration::from_micros(1),
            cap: Duration::from_micros(5),
        };
        let mut calls = 0;
        let (r, retries) = p.run_counted(
            2,
            |_: &&str| true,
            || {
                calls += 1;
                Err::<(), _>("still down")
            },
        );
        assert_eq!(r, Err("still down"));
        assert_eq!(calls, 3);
        assert_eq!(retries, 2);
    }

    #[test]
    fn non_retryable_errors_fail_fast() {
        let p = RetryPolicy::default();
        let mut calls = 0;
        let r = p.run(
            3,
            |e: &&str| *e == "transient",
            || {
                calls += 1;
                Err::<(), _>("fatal")
            },
        );
        assert_eq!(r, Err("fatal"));
        assert_eq!(calls, 1);
    }

    #[test]
    fn none_policy_never_retries() {
        let mut calls = 0;
        let r = RetryPolicy::none().run(
            4,
            |_: &&str| true,
            || {
                calls += 1;
                Err::<(), _>("transient")
            },
        );
        assert!(r.is_err());
        assert_eq!(calls, 1);
    }
}
