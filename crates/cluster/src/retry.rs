//! Bounded retries with decorrelated jitter.
//!
//! Transient faults (injected I/O errors, kv shard brown-outs) are
//! absorbed by a small, budgeted retry loop. Backoff follows the
//! decorrelated-jitter rule — `sleep = min(cap, uniform(base, 3 * prev))`
//! — which spreads contending retriers apart without the synchronised
//! thundering herds of plain exponential backoff. The jitter stream is
//! seeded from a caller-supplied token (typically the object id), so a
//! deterministic fault schedule yields a deterministic retry schedule.

use crate::cluster::ClusterError;
use crate::fault::{splitmix64, Clock, SystemClock};
use crate::node::NodeError;
use ech_core::placement::PlacementError;
use ech_kvstore::KvError;
use std::time::Duration;

/// Retryable-or-permanent verdict for a data-path error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorClass {
    /// A retry may succeed (transient fault, brown-out, lost quorum).
    Retryable,
    /// Retrying cannot help; surface the error to the caller.
    Permanent,
}

/// The single source of truth for error classification on the degraded
/// data path. Every error enum the put/get/repair/re-integration paths
/// can construct is classified **here**, variant by variant, with no
/// wildcard arms — the analyzer's D3 rule cross-checks that each variant
/// of these enums appears below, so adding a variant without deciding
/// its retry class fails `ech lint` rather than silently defaulting.
pub trait Classify {
    /// This error's retry class.
    fn class(&self) -> ErrorClass;

    /// Convenience: is the error worth retrying?
    fn is_retryable_class(&self) -> bool {
        self.class() == ErrorClass::Retryable
    }
}

impl Classify for NodeError {
    fn class(&self) -> ErrorClass {
        match self {
            // A fresh attempt rolls a fresh fault decision.
            NodeError::Io => ErrorClass::Retryable,
            // A lost message may be a one-off drop; the retransmit rolls
            // a fresh verdict (the deadline budget bounds the bill).
            NodeError::Timeout => ErrorClass::Retryable,
            // Partition windows heal on the clock; retrying toward the
            // heal is correct and the deadline budget keeps it bounded.
            NodeError::Partitioned => ErrorClass::Retryable,
            // An open breaker rejects every send until its cooldown
            // elapses — retrying into it only burns budget. Fail fast
            // and let quorum accounting route around the replica.
            NodeError::BreakerOpen => ErrorClass::Permanent,
            // Power state and membership only change via resize/repair.
            NodeError::PoweredOff => ErrorClass::Permanent,
            NodeError::NotFound => ErrorClass::Permanent,
            NodeError::DiskFull { .. } => ErrorClass::Permanent,
        }
    }
}

impl Classify for KvError {
    fn class(&self) -> ErrorClass {
        match self {
            // Shard brown-out windows close as kv ops advance the fault
            // clock, so retrying through one always exits it.
            KvError::Unavailable { .. } => ErrorClass::Retryable,
            KvError::WrongType { .. } => ErrorClass::Permanent,
            KvError::NotAnInteger => ErrorClass::Permanent,
        }
    }
}

impl Classify for PlacementError {
    fn class(&self) -> ErrorClass {
        match self {
            PlacementError::InsufficientActiveServers { .. } => ErrorClass::Permanent,
            PlacementError::ZeroReplicas => ErrorClass::Permanent,
            PlacementError::Internal(_) => ErrorClass::Permanent,
            // A version ahead of the pinned snapshot means a concurrent
            // membership change won the race; a fresh view resolves it.
            PlacementError::UnknownVersion(_) => ErrorClass::Retryable,
        }
    }
}

impl Classify for ClusterError {
    fn class(&self) -> ErrorClass {
        match self {
            ClusterError::Unavailable => ErrorClass::Retryable,
            ClusterError::QuorumNotReached { .. } => ErrorClass::Retryable,
            ClusterError::Placement(e) => e.class(),
            ClusterError::NotFound => ErrorClass::Permanent,
            ClusterError::Node(e) => e.class(),
            // The budget is spent; any further attempt would start
            // already expired.
            ClusterError::DeadlineExceeded => ErrorClass::Permanent,
            ClusterError::Internal(_) => ErrorClass::Permanent,
        }
    }
}

/// A per-operation deadline budget on an injected [`Clock`].
///
/// A deadline is an absolute clock reading, fixed once when the
/// operation starts and threaded by value through retries, hedged reads
/// and per-replica sends — every layer asks the same question
/// ("expired yet?") against the same instant, so nested retry loops
/// cannot each spend a full budget of their own. On a
/// [`crate::fault::VirtualClock`] the budget is consumed purely by
/// injected sleeps (backoff, message delays, rpc timeouts), which keeps
/// deadline behaviour deterministic under a seeded fault plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Deadline {
    /// Absolute expiry on the operation's clock; `None` = unbounded.
    at: Option<Duration>,
}

impl Deadline {
    /// No deadline: the operation may take as long as its retry budget
    /// allows.
    pub fn unbounded() -> Self {
        Deadline { at: None }
    }

    /// A deadline `budget` from now on `clock`.
    pub fn after(clock: &dyn Clock, budget: Duration) -> Self {
        Deadline {
            at: Some(clock.now().saturating_add(budget)),
        }
    }

    /// [`Deadline::after`] when a budget is configured, unbounded
    /// otherwise.
    pub fn from_config(clock: &dyn Clock, budget: Option<Duration>) -> Self {
        match budget {
            Some(b) => Deadline::after(clock, b),
            None => Deadline::unbounded(),
        }
    }

    /// Has the budget run out?
    pub fn expired(&self, clock: &dyn Clock) -> bool {
        self.at.is_some_and(|at| clock.now() >= at)
    }

    /// Budget left on the clock; `None` = unbounded.
    pub fn remaining(&self, clock: &dyn Clock) -> Option<Duration> {
        self.at.map(|at| at.saturating_sub(clock.now()))
    }
}

/// A bounded retry policy. `Default` gives every operation 4 attempts
/// with sleeps between 100 µs and 2 ms — sized for an in-process store
/// where "I/O" is a lock acquisition, not a disk seek.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (first try included). `1` disables retries.
    pub max_attempts: u32,
    /// Minimum sleep between attempts.
    pub base: Duration,
    /// Per-sleep cap; also bounds the op's total budget at
    /// `(max_attempts - 1) * cap`.
    pub cap: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base: Duration::from_micros(100),
            cap: Duration::from_millis(2),
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        }
    }

    /// Run `op`, retrying while `retryable` approves the error and
    /// attempts remain, sleeping on `clock`. Returns the final result and
    /// the number of retries spent (0 = first try decided).
    ///
    /// The loop structure keeps the data path panic-free (analyzer rule
    /// D2): the final attempt's error is returned, never unwrapped.
    pub fn run_counted_with<T, E>(
        &self,
        clock: &dyn Clock,
        token: u64,
        retryable: impl Fn(&E) -> bool,
        op: impl FnMut() -> Result<T, E>,
    ) -> (Result<T, E>, u32) {
        self.run_counted_deadline(clock, Deadline::unbounded(), token, retryable, op)
    }

    /// [`RetryPolicy::run_counted_with`] under a [`Deadline`]: a retry
    /// is only granted while the deadline has budget left, and backoff
    /// sleeps are clamped to the remaining budget so the loop never
    /// overshoots the expiry by more than the op itself takes. An
    /// already-expired deadline still allows the first attempt — the
    /// caller decides whether to even start — but no retries.
    pub fn run_counted_deadline<T, E>(
        &self,
        clock: &dyn Clock,
        deadline: Deadline,
        token: u64,
        retryable: impl Fn(&E) -> bool,
        mut op: impl FnMut() -> Result<T, E>,
    ) -> (Result<T, E>, u32) {
        let attempts = self.max_attempts.max(1);
        let mut rng = splitmix64(token ^ 0x5EED_0F0F_5EED_0F0F);
        let mut prev = self.base;
        let mut retry = 0;
        loop {
            match op() {
                Ok(v) => return (Ok(v), retry),
                Err(e) if retry + 1 < attempts && retryable(&e) && !deadline.expired(clock) => {
                    rng = splitmix64(rng);
                    let base_ns = self.base.as_nanos() as u64;
                    let span =
                        (prev.as_nanos() as u64).saturating_mul(3).max(base_ns + 1) - base_ns;
                    let mut sleep_ns = (base_ns + rng % span).min(self.cap.as_nanos() as u64);
                    if let Some(left) = deadline.remaining(clock) {
                        sleep_ns = sleep_ns.min(left.as_nanos() as u64);
                    }
                    prev = Duration::from_nanos(sleep_ns);
                    clock.sleep(prev);
                    retry += 1;
                }
                Err(e) => return (Err(e), retry),
            }
        }
    }

    /// [`RetryPolicy::run_counted_with`] on the wall clock.
    pub fn run_counted<T, E>(
        &self,
        token: u64,
        retryable: impl Fn(&E) -> bool,
        op: impl FnMut() -> Result<T, E>,
    ) -> (Result<T, E>, u32) {
        self.run_counted_with(&SystemClock::new(), token, retryable, op)
    }

    /// [`RetryPolicy::run_counted_deadline`] without the retry count:
    /// the standard runner for data-path call sites, which thread their
    /// operation's [`Deadline`] through every retry loop (analyzer rule
    /// D8 checks rpc-reachable code uses a deadline-aware runner).
    pub fn run_deadline<T, E>(
        &self,
        clock: &dyn Clock,
        deadline: Deadline,
        token: u64,
        retryable: impl Fn(&E) -> bool,
        op: impl FnMut() -> Result<T, E>,
    ) -> Result<T, E> {
        self.run_counted_deadline(clock, deadline, token, retryable, op)
            .0
    }

    /// [`RetryPolicy::run_counted_with`] without the retry count.
    pub fn run_with<T, E>(
        &self,
        clock: &dyn Clock,
        token: u64,
        retryable: impl Fn(&E) -> bool,
        op: impl FnMut() -> Result<T, E>,
    ) -> Result<T, E> {
        self.run_counted_with(clock, token, retryable, op).0
    }

    /// [`RetryPolicy::run_counted`] without the retry count, on the wall
    /// clock.
    pub fn run<T, E>(
        &self,
        token: u64,
        retryable: impl Fn(&E) -> bool,
        op: impl FnMut() -> Result<T, E>,
    ) -> Result<T, E> {
        self.run_counted(token, retryable, op).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn succeeds_first_try_without_sleeping() {
        let p = RetryPolicy::default();
        let (r, retries) = p.run_counted(1, |_: &()| true, || Ok::<_, ()>(7));
        assert_eq!(r, Ok(7));
        assert_eq!(retries, 0);
    }

    #[test]
    fn retries_transient_errors_until_success() {
        let p = RetryPolicy {
            max_attempts: 5,
            base: Duration::from_micros(1),
            cap: Duration::from_micros(10),
        };
        let mut calls = 0;
        let (r, retries) = p.run_counted(
            9,
            |_: &&str| true,
            || {
                calls += 1;
                if calls < 3 {
                    Err("transient")
                } else {
                    Ok(calls)
                }
            },
        );
        assert_eq!(r, Ok(3));
        assert_eq!(retries, 2);
    }

    #[test]
    fn exhausts_budget_and_returns_last_error() {
        let p = RetryPolicy {
            max_attempts: 3,
            base: Duration::from_micros(1),
            cap: Duration::from_micros(5),
        };
        let mut calls = 0;
        let (r, retries) = p.run_counted(
            2,
            |_: &&str| true,
            || {
                calls += 1;
                Err::<(), _>("still down")
            },
        );
        assert_eq!(r, Err("still down"));
        assert_eq!(calls, 3);
        assert_eq!(retries, 2);
    }

    #[test]
    fn non_retryable_errors_fail_fast() {
        let p = RetryPolicy::default();
        let mut calls = 0;
        let r = p.run(
            3,
            |e: &&str| *e == "transient",
            || {
                calls += 1;
                Err::<(), _>("fatal")
            },
        );
        assert_eq!(r, Err("fatal"));
        assert_eq!(calls, 1);
    }

    #[test]
    fn retry_sleeps_run_on_the_injected_clock() {
        use crate::fault::VirtualClock;
        let clock = VirtualClock::new();
        let p = RetryPolicy {
            max_attempts: 4,
            base: Duration::from_millis(50),
            cap: Duration::from_millis(200),
        };
        let (r, retries) = p.run_counted_with(&clock, 11, |_: &&str| true, || Err::<(), _>("down"));
        assert_eq!(r, Err("down"));
        assert_eq!(retries, 3);
        // All backoff time was virtual: the clock advanced by the sleeps
        // (at least base per retry) without blocking the thread.
        assert!(clock.now() >= Duration::from_millis(150));
    }

    #[test]
    fn every_data_path_error_is_classified() {
        use ech_core::placement::PlacementError;
        use ech_kvstore::KvError;
        assert_eq!(NodeError::Io.class(), ErrorClass::Retryable);
        assert_eq!(
            NodeError::Timeout.class(),
            ErrorClass::Retryable,
            "a retransmit rolls a fresh drop verdict"
        );
        assert_eq!(
            NodeError::Partitioned.class(),
            ErrorClass::Retryable,
            "partition windows heal on the clock"
        );
        assert_eq!(
            NodeError::BreakerOpen.class(),
            ErrorClass::Permanent,
            "retrying into an open breaker only burns budget"
        );
        assert_eq!(NodeError::PoweredOff.class(), ErrorClass::Permanent);
        assert_eq!(NodeError::NotFound.class(), ErrorClass::Permanent);
        assert_eq!(
            NodeError::DiskFull {
                capacity: 1,
                needed: 2
            }
            .class(),
            ErrorClass::Permanent
        );
        assert_eq!(
            KvError::Unavailable { shard: 0 }.class(),
            ErrorClass::Retryable
        );
        assert_eq!(KvError::NotAnInteger.class(), ErrorClass::Permanent);
        assert_eq!(ClusterError::Unavailable.class(), ErrorClass::Retryable);
        assert_eq!(
            ClusterError::QuorumNotReached {
                written: 1,
                required: 2
            }
            .class(),
            ErrorClass::Retryable
        );
        assert_eq!(ClusterError::NotFound.class(), ErrorClass::Permanent);
        assert_eq!(
            ClusterError::Node(NodeError::Io).class(),
            ErrorClass::Retryable,
            "Node wraps delegate to the inner class"
        );
        assert_eq!(
            ClusterError::Placement(PlacementError::ZeroReplicas).class(),
            ErrorClass::Permanent
        );
        assert_eq!(
            ClusterError::DeadlineExceeded.class(),
            ErrorClass::Permanent,
            "a spent budget cannot be retried into"
        );
        assert_eq!(
            ClusterError::Internal("invariant").class(),
            ErrorClass::Permanent
        );
        assert_eq!(
            PlacementError::Internal("invariant").class(),
            ErrorClass::Permanent
        );
        assert_eq!(
            PlacementError::UnknownVersion(ech_core::ids::VersionId(9)).class(),
            ErrorClass::Retryable,
            "a racing reader re-resolves on a fresh view"
        );
    }

    #[test]
    fn deadline_cuts_retries_short() {
        use crate::fault::VirtualClock;
        let clock = VirtualClock::new();
        let p = RetryPolicy {
            max_attempts: 10,
            base: Duration::from_millis(2),
            cap: Duration::from_millis(2),
        };
        // Budget for roughly two backoff sleeps, not nine.
        let deadline = Deadline::after(&clock, Duration::from_millis(5));
        let mut calls = 0;
        let (r, retries) = p.run_counted_deadline(
            &clock,
            deadline,
            5,
            |_: &&str| true,
            || {
                calls += 1;
                Err::<(), _>("down")
            },
        );
        assert_eq!(r, Err("down"));
        assert!(
            (1..9).contains(&retries),
            "deadline must stop the loop early, got {retries} retries"
        );
        assert_eq!(calls, retries + 1);
        assert!(deadline.expired(&clock), "loop ran the budget out");
        // The clamp keeps the overshoot below one full backoff step.
        assert!(clock.now() <= Duration::from_millis(5 + 2));
    }

    #[test]
    fn unbounded_deadline_never_expires() {
        use crate::fault::VirtualClock;
        let clock = VirtualClock::new();
        let d = Deadline::unbounded();
        clock.advance(Duration::from_secs(3600));
        assert!(!d.expired(&clock));
        assert_eq!(d.remaining(&clock), None);
        assert_eq!(Deadline::from_config(&clock, None), Deadline::unbounded());
    }

    #[test]
    fn deadline_remaining_counts_down_and_saturates() {
        use crate::fault::VirtualClock;
        let clock = VirtualClock::new();
        let d = Deadline::after(&clock, Duration::from_millis(10));
        assert_eq!(d.remaining(&clock), Some(Duration::from_millis(10)));
        clock.advance(Duration::from_millis(4));
        assert_eq!(d.remaining(&clock), Some(Duration::from_millis(6)));
        clock.advance(Duration::from_millis(20));
        assert_eq!(d.remaining(&clock), Some(Duration::ZERO));
        assert!(d.expired(&clock));
    }

    #[test]
    fn none_policy_never_retries() {
        let mut calls = 0;
        let r = RetryPolicy::none().run(
            4,
            |_: &&str| true,
            || {
                calls += 1;
                Err::<(), _>("transient")
            },
        );
        assert!(r.is_err());
        assert_eq!(calls, 1);
    }
}
