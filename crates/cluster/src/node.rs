//! A storage node: one simulated server process holding object replicas.
//!
//! Nodes keep their data when powered off — the elastic design's central
//! assumption ("the servers in the cluster never leave the cluster when
//! they are turned down", §IV). Powering a node off only flips its state;
//! reads/writes against an off node are rejected, but its disk contents
//! survive for the moment it rejoins.

use crate::fault::{FaultInjector, InjectedFault};
use crate::sync::{
    counter_u64, footprint, footprint_read, footprint_write, AtomicBool, AtomicU64, Ordering,
};
use bytes::Bytes;
use ech_core::dirty::ObjectHeader;
use ech_core::ids::{ObjectId, ServerId, VersionId};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// One stored replica: payload plus the paper's object header (last
/// written version + dirty bit, §III-E2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoredObject {
    /// Object payload.
    pub data: Bytes,
    /// Version/dirty header.
    pub header: ObjectHeader,
}

/// Errors from node-level operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeError {
    /// The node is powered off.
    PoweredOff,
    /// The object is not stored on this node.
    NotFound,
    /// The write would exceed the node's configured capacity (§III-D:
    /// the skewed layout over-fills small disks unless capacities are
    /// provisioned to match the weights).
    DiskFull {
        /// Configured capacity in bytes.
        capacity: u64,
        /// Bytes that would be stored after the write.
        needed: u64,
    },
    /// No reply arrived within the message timeout: the request or its
    /// response was lost in flight ([`crate::net`]). The op may or may
    /// not have executed — at-least-once retries must tolerate both.
    Timeout,
    /// A partition window cuts the link to this node; sends lose their
    /// budget until the window heals ([`crate::net::PartitionWindow`]).
    Partitioned,
    /// The per-replica circuit breaker is open: recent sends kept
    /// failing, so this one failed fast instead of burning another rpc
    /// timeout ([`crate::net::ReplicaBreakers`]).
    BreakerOpen,
    /// A transient I/O error (injected by a fault plan). Unlike the
    /// other variants this one is worth retrying: the next attempt rolls
    /// a fresh fault decision.
    Io,
}

impl NodeError {
    /// Is this error transient (a retry may succeed)? Delegates to the
    /// central [`crate::retry::Classify`] table.
    pub fn is_transient(&self) -> bool {
        crate::retry::Classify::is_retryable_class(self)
    }
}

impl std::fmt::Display for NodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NodeError::PoweredOff => write!(f, "node is powered off"),
            NodeError::NotFound => write!(f, "object not found on node"),
            NodeError::DiskFull { capacity, needed } => {
                write!(
                    f,
                    "disk full: capacity {capacity} bytes, write needs {needed}"
                )
            }
            NodeError::Timeout => write!(f, "no reply within the message timeout"),
            NodeError::Partitioned => write!(f, "link cut by an active partition"),
            NodeError::BreakerOpen => write!(f, "replica circuit breaker is open"),
            NodeError::Io => write!(f, "transient i/o error"),
        }
    }
}

impl std::error::Error for NodeError {}

/// A thread-safe storage node.
#[derive(Debug)]
pub struct StorageNode {
    id: ServerId,
    powered: AtomicBool,
    objects: RwLock<HashMap<ObjectId, StoredObject>>,
    bytes_stored: AtomicU64,
    reads: AtomicU64,
    writes: AtomicU64,
    /// Disk capacity in bytes; `u64::MAX` = unlimited.
    capacity: u64,
    /// Optional fault injector; `None` keeps the data path fault-free at
    /// the cost of one branch on a pointer.
    fault: Option<Arc<FaultInjector>>,
}

impl StorageNode {
    /// A powered-on, empty node with unlimited capacity.
    pub fn new(id: ServerId) -> Self {
        Self::with_capacity(id, u64::MAX)
    }

    /// A powered-on, empty node with `capacity` bytes of disk.
    pub fn with_capacity(id: ServerId, capacity: u64) -> Self {
        Self::with_capacity_and_faults(id, capacity, None)
    }

    /// A powered-on, empty node with `capacity` bytes of disk, running
    /// `fault`'s schedule on every put/get.
    pub fn with_capacity_and_faults(
        id: ServerId,
        capacity: u64,
        fault: Option<Arc<FaultInjector>>,
    ) -> Self {
        StorageNode {
            id,
            powered: AtomicBool::new(true),
            objects: RwLock::new(HashMap::new()),
            bytes_stored: counter_u64(0),
            reads: counter_u64(0),
            writes: counter_u64(0),
            capacity,
            fault,
        }
    }

    /// Consult the fault plan before serving an op: sleep through a
    /// slow-replica delay, fail with [`NodeError::Io`] on an injected
    /// error, or crash (losing the disk) on a crash-at-op event.
    fn fault_gate(&self) -> Result<(), NodeError> {
        if let Some(inj) = &self.fault {
            match inj.before_node_op(self.id.index()) {
                Ok(None) => {}
                // Slow-replica delays run on the injector's clock, so a
                // virtual clock turns them into pure time accounting.
                Ok(Some(delay)) => inj.clock().sleep(delay),
                Err(InjectedFault::Io) => return Err(NodeError::Io),
                Err(InjectedFault::Crash) => {
                    self.crash();
                    return Err(NodeError::Io);
                }
            }
        }
        Ok(())
    }

    /// Configured disk capacity in bytes (`u64::MAX` = unlimited).
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Footprint key covering this node's raw-locked object map and its
    /// byte accounting (the state the checker cannot instrument).
    #[inline]
    fn foot_key(&self) -> u64 {
        footprint::NODE_BASE | self.id.index() as u64
    }

    /// This node's server id.
    pub fn id(&self) -> ServerId {
        self.id
    }

    /// Is the node powered on?
    pub fn is_powered(&self) -> bool {
        self.powered.load(Ordering::Acquire)
    }

    /// Power the node on or off. Data is retained either way.
    pub fn set_powered(&self, on: bool) {
        self.powered.store(on, Ordering::Release);
    }

    /// Store a replica. Fails when powered off.
    pub fn put(
        &self,
        oid: ObjectId,
        data: Bytes,
        version: VersionId,
        dirty: bool,
    ) -> Result<(), NodeError> {
        self.fault_gate()?;
        if !self.is_powered() {
            return Err(NodeError::PoweredOff);
        }
        footprint_write(self.foot_key());
        let obj = StoredObject {
            data,
            header: ObjectHeader { version, dirty },
        };
        let mut map = self.objects.write();
        let old_len = map.get(&oid).map(|o| o.data.len() as u64).unwrap_or(0);
        let needed = self.bytes_stored.load(Ordering::Relaxed) - old_len + obj.data.len() as u64;
        if needed > self.capacity {
            return Err(NodeError::DiskFull {
                capacity: self.capacity,
                needed,
            });
        }
        self.bytes_stored
            .fetch_add(obj.data.len() as u64, Ordering::Relaxed);
        self.bytes_stored.fetch_sub(old_len, Ordering::Relaxed);
        map.insert(oid, obj);
        self.writes.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// **Deliberately seeded idempotence bug** (modelcheck builds only):
    /// an append-style store that concatenates onto whatever this node
    /// already holds instead of overwriting it. A retransmitted request
    /// — the message scheduler's `Duplicate` fate — executes twice and
    /// doubles the payload. The `msg-dup-append-bug` model catches the
    /// corrupted bytes escaping to a reader; thread-only exploration
    /// never retransmits, so the bug is invisible without `--msg`.
    #[cfg(feature = "modelcheck")]
    pub fn append_for_modelcheck(
        &self,
        oid: ObjectId,
        data: Bytes,
        version: VersionId,
        dirty: bool,
    ) -> Result<(), NodeError> {
        let existing = match self.objects.read().get(&oid) {
            Some(obj) => obj.data.clone(),
            None => Bytes::new(),
        };
        let mut joined = Vec::with_capacity(existing.len() + data.len());
        joined.extend_from_slice(&existing);
        joined.extend_from_slice(&data);
        self.put(oid, Bytes::from(joined), version, dirty)
    }

    /// Read a replica. Fails when powered off or missing.
    pub fn get(&self, oid: ObjectId) -> Result<StoredObject, NodeError> {
        self.fault_gate()?;
        if !self.is_powered() {
            return Err(NodeError::PoweredOff);
        }
        footprint_read(self.foot_key());
        self.reads.fetch_add(1, Ordering::Relaxed);
        self.objects
            .read()
            .get(&oid)
            .cloned()
            .ok_or(NodeError::NotFound)
    }

    /// Drop a replica (after it migrated away). Succeeds even when the
    /// node is off — the coordinator may reconcile state lazily; a real
    /// system would queue the delete until power-on.
    pub fn remove(&self, oid: ObjectId) -> bool {
        footprint_write(self.foot_key());
        let mut map = self.objects.write();
        if let Some(obj) = map.remove(&oid) {
            self.bytes_stored
                .fetch_sub(obj.data.len() as u64, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    /// Advance the stored header of `oid` to `version` (never
    /// downgrading), e.g. after a re-integration confirmed this replica's
    /// placement at the new version. Returns true when the header was
    /// updated.
    pub fn restamp(&self, oid: ObjectId, version: VersionId, dirty: bool) -> bool {
        footprint_write(self.foot_key());
        let mut map = self.objects.write();
        match map.get_mut(&oid) {
            Some(obj) if obj.header.version <= version => {
                obj.header = ObjectHeader { version, dirty };
                true
            }
            _ => false,
        }
    }

    /// Simulate a disk-losing crash: all replicas on this node vanish and
    /// the node goes dark. Returns how many objects were lost locally.
    pub fn crash(&self) -> usize {
        footprint_write(self.foot_key());
        self.set_powered(false);
        let mut map = self.objects.write();
        let lost = map.len();
        map.clear();
        // Counter reset on crash: `bytes_stored` is constructed via
        // `counter_u64`, which is what licenses the relaxed store — the
        // node is already dark, so no reader can order against it.
        self.bytes_stored.store(0, Ordering::Relaxed);
        lost
    }

    /// Does this node hold `oid` (regardless of power state)?
    pub fn holds(&self, oid: ObjectId) -> bool {
        footprint_read(self.foot_key());
        self.objects.read().contains_key(&oid)
    }

    /// Number of replicas stored.
    pub fn object_count(&self) -> usize {
        footprint_read(self.foot_key());
        self.objects.read().len()
    }

    /// Bytes stored.
    pub fn bytes_stored(&self) -> u64 {
        footprint_read(self.foot_key());
        self.bytes_stored.load(Ordering::Relaxed)
    }

    /// (reads, writes) op counters.
    pub fn op_counts(&self) -> (u64, u64) {
        (
            self.reads.load(Ordering::Relaxed),
            self.writes.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node() -> StorageNode {
        StorageNode::new(ServerId(3))
    }

    #[test]
    fn put_get_roundtrip() {
        let n = node();
        n.put(ObjectId(1), Bytes::from("payload"), VersionId(2), true)
            .unwrap();
        let got = n.get(ObjectId(1)).unwrap();
        assert_eq!(&got.data[..], b"payload");
        assert_eq!(got.header.version, VersionId(2));
        assert!(got.header.dirty);
        assert_eq!(n.object_count(), 1);
        assert_eq!(n.bytes_stored(), 7);
    }

    #[test]
    fn powered_off_rejects_io_but_keeps_data() {
        let n = node();
        n.put(ObjectId(1), Bytes::from("x"), VersionId(1), false)
            .unwrap();
        n.set_powered(false);
        assert_eq!(n.get(ObjectId(1)), Err(NodeError::PoweredOff));
        assert_eq!(
            n.put(ObjectId(2), Bytes::from("y"), VersionId(1), false),
            Err(NodeError::PoweredOff)
        );
        assert!(n.holds(ObjectId(1)), "data survives power-off");
        n.set_powered(true);
        assert_eq!(&n.get(ObjectId(1)).unwrap().data[..], b"x");
    }

    #[test]
    fn overwrite_updates_byte_accounting() {
        let n = node();
        n.put(ObjectId(1), Bytes::from("aaaa"), VersionId(1), false)
            .unwrap();
        n.put(ObjectId(1), Bytes::from("bb"), VersionId(2), true)
            .unwrap();
        assert_eq!(n.bytes_stored(), 2);
        assert_eq!(n.object_count(), 1);
        assert_eq!(n.get(ObjectId(1)).unwrap().header.version, VersionId(2));
    }

    #[test]
    fn remove_frees_bytes() {
        let n = node();
        n.put(ObjectId(1), Bytes::from("abc"), VersionId(1), false)
            .unwrap();
        assert!(n.remove(ObjectId(1)));
        assert!(!n.remove(ObjectId(1)));
        assert_eq!(n.bytes_stored(), 0);
        assert_eq!(n.get(ObjectId(1)), Err(NodeError::NotFound));
    }

    #[test]
    fn capacity_is_enforced() {
        let n = StorageNode::with_capacity(ServerId(0), 10);
        n.put(ObjectId(1), Bytes::from("12345678"), VersionId(1), false)
            .unwrap();
        // 8 + 8 > 10: rejected.
        assert!(matches!(
            n.put(ObjectId(2), Bytes::from("12345678"), VersionId(1), false),
            Err(NodeError::DiskFull { capacity: 10, .. })
        ));
        // Overwriting the same object within budget is fine.
        n.put(ObjectId(1), Bytes::from("123456789a"), VersionId(2), false)
            .unwrap();
        assert_eq!(n.bytes_stored(), 10);
        // Removing frees room.
        n.remove(ObjectId(1));
        n.put(ObjectId(2), Bytes::from("xy"), VersionId(2), false)
            .unwrap();
    }

    #[test]
    fn restamp_never_downgrades() {
        let n = node();
        n.put(ObjectId(1), Bytes::from("x"), VersionId(5), true)
            .unwrap();
        assert!(n.restamp(ObjectId(1), VersionId(7), false));
        assert_eq!(n.get(ObjectId(1)).unwrap().header.version, VersionId(7));
        assert!(!n.get(ObjectId(1)).unwrap().header.dirty);
        // Older stamp is refused.
        assert!(!n.restamp(ObjectId(1), VersionId(6), true));
        assert_eq!(n.get(ObjectId(1)).unwrap().header.version, VersionId(7));
        // Missing object: no-op.
        assert!(!n.restamp(ObjectId(9), VersionId(1), false));
    }

    #[test]
    fn crash_loses_data_and_powers_off() {
        let n = node();
        n.put(ObjectId(1), Bytes::from("x"), VersionId(1), false)
            .unwrap();
        assert_eq!(n.crash(), 1);
        assert!(!n.is_powered());
        assert!(!n.holds(ObjectId(1)));
        assert_eq!(n.bytes_stored(), 0);
        // Power back on: disk replaced, still empty.
        n.set_powered(true);
        assert_eq!(n.get(ObjectId(1)), Err(NodeError::NotFound));
    }

    #[test]
    fn fault_gate_injects_errors_then_crashes() {
        use crate::fault::{FaultInjector, FaultPlan, NodeFaultSpec};
        let mut plan = FaultPlan::default();
        plan.set_node(
            3,
            NodeFaultSpec {
                io_error_prob: 1.0,
                io_error_until_op: 2,
                crash_at_op: Some(4),
                ..NodeFaultSpec::default()
            },
        );
        let inj = Arc::new(FaultInjector::new(4, plan));
        let n = StorageNode::with_capacity_and_faults(ServerId(3), u64::MAX, Some(inj.clone()));
        // Ops 0 and 1 fail with transient errors; nothing is stored.
        assert_eq!(
            n.put(ObjectId(1), Bytes::from("x"), VersionId(1), false),
            Err(NodeError::Io)
        );
        assert_eq!(n.get(ObjectId(1)), Err(NodeError::Io));
        assert!(!n.holds(ObjectId(1)));
        // Ops 2 and 3 are past the error window and succeed.
        n.put(ObjectId(1), Bytes::from("x"), VersionId(1), false)
            .unwrap();
        assert!(n.get(ObjectId(1)).is_ok());
        // Op 4 is the crash: disk lost, node dark, caller sees Io.
        assert_eq!(n.get(ObjectId(1)), Err(NodeError::Io));
        assert!(!n.is_powered());
        assert!(!n.holds(ObjectId(1)));
        assert_eq!(inj.stats().crashes, 1);
        assert_eq!(inj.stats().io_errors, 2);
    }

    #[test]
    fn missing_object_is_not_found() {
        let n = node();
        assert_eq!(n.get(ObjectId(9)), Err(NodeError::NotFound));
    }
}
