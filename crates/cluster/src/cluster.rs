//! The cluster coordinator: an in-process, multi-threaded elastic object
//! store.
//!
//! This is the executable counterpart of the paper's modified Sheepdog
//! deployment: real object bytes on [`StorageNode`]s, placement by
//! `ech-core` (Algorithm 1 or original CH), membership versioning on
//! every resize, write-availability offloading for free (placement skips
//! powered-off nodes), dirty tracking in the Redis-like store, and
//! selective re-integration executing actual replica copies.
//!
//! All operations take `&self`; the coordinator is safe to share across
//! client threads (`Arc<Cluster>`).

use crate::dirty_store::{KvDirtyTable, KvHeaderStore};
use crate::fault::{Clock, FaultInjector, FaultPlan, FaultStatsSnapshot, SystemClock};
use crate::net::{
    BreakerSnapshot, NetFabric, NetPlan, NetStatsSnapshot, ReplicaBreakers, SendVerdict,
};
use crate::node::{NodeError, StorageNode};
use crate::repair::RepairStats;
use crate::retry::{Classify, Deadline, RetryPolicy};
use crate::sync::{
    counter_u64, footprint, footprint_write, msg_fate, AtomicBool, AtomicU64, MsgFate, Mutex,
    Ordering,
};
use arc_swap::ArcSwap;
use bytes::Bytes;
use ech_core::cache::ShardedPlacementCache;
use ech_core::dirty::{DirtyEntry, DirtyTable, HeaderSource};
use ech_core::engine::EngineKind;
use ech_core::ids::{ObjectId, ServerId, VersionId};
use ech_core::layout::Layout;
use ech_core::placement::{Placement, PlacementError, Strategy};
use ech_core::ratelimit::TokenBucket;
use ech_core::reintegration::{Idle, MigrationTask, Reintegrator};
use ech_core::stats::{CacheSnapshot, PathCounters, PathSnapshot};
use ech_core::view::ClusterView;
use ech_kvstore::{KvStore, ShardFaultHook};
use std::sync::Arc;
use std::time::Duration;

/// Cluster construction parameters.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of storage nodes.
    pub servers: usize,
    /// Replication factor.
    pub replicas: usize,
    /// Virtual-node fairness base `B`.
    pub layout_base: u32,
    /// Placement algorithm (Primary = the paper's elastic design).
    pub strategy: Strategy,
    /// Candidate-stream engine the strategy walks (ring = the paper's
    /// consistent-hash ring; jump/dx/power = O(1)-lookup backends).
    pub placement: EngineKind,
    /// Shards of the backing key-value store.
    pub kv_shards: usize,
    /// Optional per-node disk capacities (§III-D tiered provisioning);
    /// `None` = unlimited disks.
    pub capacity_plan: Option<ech_core::layout::CapacityPlan>,
    /// Replica acknowledgements a write needs before it is acked.
    pub write_quorum: WriteQuorum,
    /// Retry budget applied to transiently-failing node operations.
    pub retry: RetryPolicy,
    /// Entries the sharded placement cache holds before evicting.
    pub cache_capacity: usize,
    /// Lock stripes of the placement cache (rounded up to a power of
    /// two).
    pub cache_shards: usize,
    /// Tasks one re-integration drain batch plans before executing them
    /// (executed in parallel when no fault plan is installed).
    pub reintegration_batch: usize,
    /// Migration throttle in payload bytes per second; `None` leaves
    /// re-integration unthrottled. Must be positive when set.
    pub migration_rate: Option<f64>,
    /// Per-operation deadline budget for puts and gets: once spent,
    /// retries stop, remaining secondaries are skipped (and recorded as
    /// missed), and the op fails with [`ClusterError::DeadlineExceeded`]
    /// if it cannot degrade. `None` = no budget (retry policy alone
    /// bounds the op).
    pub op_deadline: Option<Duration>,
    /// Per-replica circuit breaker ([`crate::net::BreakerConfig`]):
    /// after enough consecutive message-level failures, sends to that
    /// replica fail fast instead of burning an rpc timeout each. `None`
    /// disables health tracking.
    pub breaker: Option<crate::net::BreakerConfig>,
}

impl ClusterConfig {
    /// The paper's deployment shape: 10 nodes, 2-way replication,
    /// primary placement over the equal-work layout.
    ///
    /// The placement engine defaults to the ring but honours the
    /// `ECH_PLACEMENT` environment variable (`ring|jump|dx|power`), so
    /// whole drill suites (chaos, stress, model replay) can be re-run
    /// under an O(1) backend without touching their configs.
    ///
    /// # Panics
    /// Panics on an unparseable `ECH_PLACEMENT` value: a typo silently
    /// falling back to the ring would make an entire drill suite believe
    /// it exercised an O(1) backend while actually re-running the ring.
    pub fn paper() -> Self {
        let placement = match std::env::var("ECH_PLACEMENT") {
            // ech-allow(D2): this is config-time, not the data path —
            // a typoed engine name must fail the drill loudly, not
            // silently invalidate its coverage by running the default.
            Ok(v) => v.parse().unwrap_or_else(|e| panic!("ECH_PLACEMENT: {e}")),
            Err(std::env::VarError::NotPresent) => EngineKind::default(),
            // ech-allow(D2): same reasoning for a non-unicode value.
            Err(e) => panic!("ECH_PLACEMENT: {e}"),
        };
        ClusterConfig {
            servers: 10,
            replicas: 2,
            layout_base: 10_000,
            strategy: Strategy::Primary,
            placement,
            kv_shards: 10,
            capacity_plan: None,
            write_quorum: WriteQuorum::default(),
            retry: RetryPolicy::default(),
            cache_capacity: 65_536,
            cache_shards: 16,
            reintegration_batch: 8,
            migration_rate: None,
            op_deadline: None,
            breaker: None,
        }
    }
}

/// How many replica writes must succeed before a put is acknowledged.
///
/// The primary replica is always mandatory — it anchors the header-version
/// placement that degraded reads and healing rely on. Secondaries that
/// fail below the quorum are recorded as dirty-table entries and healed by
/// [`Cluster::heal_dirty`] / repair, so an acked write converges back to
/// full replication.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WriteQuorum {
    /// Every replica must succeed (strictest, least available).
    All,
    /// The primary plus a majority of the `r - 1` secondaries:
    /// `1 + ceil((r - 1) / 2)` acks. At `r = 2` this equals [`WriteQuorum::All`].
    #[default]
    PrimaryPlusMajority,
    /// A fixed ack count, clamped to `1..=r`. The primary still counts
    /// toward — and is required by — the quorum.
    AtLeast(usize),
}

impl WriteQuorum {
    /// Acks required at replication factor `replicas`.
    pub fn required(&self, replicas: usize) -> usize {
        match *self {
            WriteQuorum::All => replicas,
            WriteQuorum::PrimaryPlusMajority => 1 + replicas.saturating_sub(1).div_ceil(2),
            WriteQuorum::AtLeast(n) => n.clamp(1, replicas.max(1)),
        }
    }
}

/// Cluster-level operation errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterError {
    /// Placement failed (not enough active servers).
    Placement(PlacementError),
    /// No replica holds the object (an authoritative miss — retrying
    /// cannot help).
    NotFound,
    /// Candidate replicas exist but all attempts hit transient faults;
    /// the object may well be there. Retryable.
    Unavailable,
    /// Fewer replicas acknowledged the write than the configured quorum
    /// requires. Retryable (the failures may be transient).
    QuorumNotReached {
        /// Replicas that acknowledged.
        written: usize,
        /// Acks the quorum required.
        required: usize,
    },
    /// A node rejected an operation (unexpected power race).
    Node(NodeError),
    /// The operation's deadline budget ([`ClusterConfig::op_deadline`])
    /// ran out before it could complete *or* degrade cleanly. Permanent:
    /// any further attempt would start already expired.
    DeadlineExceeded,
    /// A coordinator invariant failed (e.g. a placement named a server
    /// outside the cluster). Indicates a bug; the data path reports it
    /// instead of panicking so degraded mode stays degraded (rule D2).
    Internal(&'static str),
}

impl ClusterError {
    /// True when the operation may succeed if simply retried. The
    /// verdict is delegated to the exhaustive classification in
    /// [`crate::retry`] (analyzer rule D3).
    pub fn is_retryable(&self) -> bool {
        self.is_retryable_class()
    }
}

impl From<PlacementError> for ClusterError {
    fn from(e: PlacementError) -> Self {
        ClusterError::Placement(e)
    }
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::Placement(e) => write!(f, "placement failed: {e}"),
            ClusterError::NotFound => write!(f, "object not found on any replica"),
            ClusterError::Unavailable => {
                write!(f, "replicas temporarily unavailable (transient faults)")
            }
            ClusterError::QuorumNotReached { written, required } => write!(
                f,
                "write quorum not reached ({written} of {required} required acks)"
            ),
            ClusterError::Node(e) => write!(f, "node error: {e}"),
            ClusterError::DeadlineExceeded => {
                write!(f, "operation deadline budget exhausted")
            }
            ClusterError::Internal(what) => {
                write!(f, "cluster invariant violated: {what}")
            }
        }
    }
}

impl std::error::Error for ClusterError {}

/// Statistics from a re-integration pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReintegrationStats {
    /// Tasks (objects) migrated.
    pub tasks: usize,
    /// Individual replica moves executed.
    pub moves: usize,
    /// Payload bytes copied.
    pub bytes: u64,
    /// Replica moves that failed on message-level faults after retries
    /// (the task's entry is re-logged so a post-heal drain re-plans it).
    pub failed_moves: usize,
}

impl ReintegrationStats {
    /// Accumulate another pass's counters into this one.
    pub fn absorb(&mut self, other: ReintegrationStats) {
        self.tasks += other.tasks;
        self.moves += other.moves;
        self.bytes += other.bytes;
        self.failed_moves += other.failed_moves;
    }
}

/// Token-bucket throttle for re-integration payload bytes. Refills run
/// off the cluster clock, so virtual-clock drills stay deterministic.
#[derive(Debug)]
struct MigrationThrottle {
    bucket: TokenBucket,
    last_refill: Duration,
}

/// How reads pick among an object's replicas.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReadPolicy {
    /// Always try the first replica first (simple, but hot-spots it).
    #[default]
    FirstReplica,
    /// Rotate the starting replica round-robin, spreading read load
    /// across all holders — the equal-work layout then makes read work
    /// proportional to data stored ("read performance proportionality",
    /// §III-C).
    Balanced,
    /// Probe the first replica under a latency budget, and hedge to the
    /// remaining candidates when the probe fails or overruns it
    /// (tail-latency hedging against slow replicas). The budget is
    /// measured on the cluster clock, so virtual-clock drills hedge
    /// deterministically.
    Hedged {
        /// Latency budget granted to the first candidate before the
        /// hedge fires.
        threshold: std::time::Duration,
    },
}

/// The elastic object-store cluster.
pub struct Cluster {
    cfg: ClusterConfig,
    nodes: Vec<Arc<StorageNode>>,
    /// RCU-style membership snapshot: readers [`ArcSwap::load`] an
    /// immutable `Arc<ClusterView>` without locking, and the `Arc` pins a
    /// coherent epoch for as long as they hold it. Writers
    /// clone-mutate-publish under `view_write`.
    view: ArcSwap<ClusterView>,
    /// Serialises view writers (resize, crash marking, repair); readers
    /// never touch it.
    view_write: Mutex<()>,
    /// Sharded `(oid, version) -> Placement` cache in front of the ring
    /// walk.
    cache: ShardedPlacementCache,
    kv: Arc<KvStore>,
    /// Dirty-table handle. `KvDirtyTable` clones share the backing
    /// store and the kv list ops are shard-atomic, so the hot path
    /// appends through a throwaway clone instead of a coordinator lock;
    /// Algorithm 2's serial scan order is enforced by `engine`'s lock.
    dirty: KvDirtyTable,
    headers: KvHeaderStore,
    engine: Mutex<Reintegrator>,
    migration_limiter: Option<Mutex<MigrationThrottle>>,
    stop_worker: AtomicBool,
    migrated_bytes: AtomicU64,
    read_rr: AtomicU64,
    fault: Option<Arc<FaultInjector>>,
    /// Message fault plane: every data-path send to a node crosses this
    /// fabric (when installed) via [`Cluster::rpc`].
    net: Option<Arc<NetFabric>>,
    /// Per-replica circuit breakers consulted by [`Cluster::rpc`].
    breakers: Option<ReplicaBreakers>,
    clock: Arc<dyn Clock>,
    counters: PathCounters,
}

impl Cluster {
    /// Build a cluster at full power.
    pub fn new(cfg: ClusterConfig) -> Arc<Self> {
        Self::build(cfg, None)
    }

    /// Build a cluster running a deterministic [`FaultPlan`]: the
    /// injector is threaded through every node's data path and installed
    /// as the key-value store's shard-fault hook.
    pub fn with_faults(cfg: ClusterConfig, plan: FaultPlan) -> Arc<Self> {
        let injector = Arc::new(FaultInjector::new(cfg.servers, plan));
        Self::build(cfg, Some(injector))
    }

    /// [`Cluster::with_faults`] running on an injected [`Clock`]: retry
    /// backoff, kv brown-out waits, slow-replica delays and hedged-read
    /// thresholds all consume `clock` instead of the wall clock, so a
    /// [`crate::fault::VirtualClock`] makes a whole drill replayable
    /// without real-time dependence (`ech chaos` uses this).
    pub fn with_faults_and_clock(
        cfg: ClusterConfig,
        plan: FaultPlan,
        clock: Arc<dyn Clock>,
    ) -> Arc<Self> {
        let injector = Arc::new(FaultInjector::with_clock(cfg.servers, plan, clock));
        Self::build(cfg, Some(injector))
    }

    fn build(cfg: ClusterConfig, fault: Option<Arc<FaultInjector>>) -> Arc<Self> {
        let clock: Arc<dyn Clock> = match &fault {
            Some(inj) => inj.clock().clone(),
            None => Arc::new(SystemClock::new()),
        };
        let layout = match cfg.strategy {
            Strategy::Primary => Layout::equal_work(cfg.servers, cfg.layout_base),
            Strategy::Original => Layout::uniform(cfg.servers, cfg.layout_base),
        };
        let view = ClusterView::with_engine(layout, cfg.strategy, cfg.replicas, cfg.placement);
        let kv = Arc::new(KvStore::new(cfg.kv_shards));
        if let Some(inj) = &fault {
            kv.set_fault_hook(Some(inj.clone() as Arc<dyn ShardFaultHook>));
        }
        let nodes = (0..cfg.servers)
            .map(|i| {
                let id = ServerId(i as u32);
                let capacity = cfg
                    .capacity_plan
                    .as_ref()
                    .map(|p| p.capacity(id))
                    .unwrap_or(u64::MAX);
                Arc::new(StorageNode::with_capacity_and_faults(
                    id,
                    capacity,
                    fault.clone(),
                ))
            })
            .collect();
        let net = fault
            .as_ref()
            .and_then(|inj| inj.plan().net.clone())
            .map(|plan| Arc::new(NetFabric::new(cfg.servers, plan, clock.clone())));
        let breakers = cfg.breaker.map(|b| ReplicaBreakers::new(cfg.servers, b));
        Arc::new(Cluster {
            nodes,
            view: ArcSwap::from_pointee(view),
            view_write: Mutex::new(()),
            cache: ShardedPlacementCache::new(cfg.cache_capacity.max(1), cfg.cache_shards.max(1)),
            dirty: KvDirtyTable::with_clock(kv.clone(), clock.clone()),
            headers: KvHeaderStore::with_clock(kv.clone(), clock.clone()),
            engine: Mutex::new(Reintegrator::new()),
            migration_limiter: Self::migration_limiter(&cfg, &clock),
            stop_worker: AtomicBool::new(false),
            migrated_bytes: counter_u64(0),
            read_rr: counter_u64(0),
            kv,
            fault,
            net,
            breakers,
            cfg,
            clock,
            counters: PathCounters::default(),
        })
    }

    /// Build the optional migration throttle from the configured rate.
    /// The burst is one second of budget, so a drain never outruns the
    /// rate by more than a second's worth of bytes.
    fn migration_limiter(
        cfg: &ClusterConfig,
        clock: &Arc<dyn Clock>,
    ) -> Option<Mutex<MigrationThrottle>> {
        cfg.migration_rate.map(|rate| {
            Mutex::new(MigrationThrottle {
                bucket: TokenBucket::new(rate, rate),
                last_refill: clock.now(),
            })
        })
    }

    /// The configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// The node handles (for inspection in tests/examples).
    pub fn nodes(&self) -> &[Arc<StorageNode>] {
        &self.nodes
    }

    /// The clock every time-dependent data-path decision runs on.
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    /// Resolve a placement-named server to its node handle. A miss means
    /// a placement/membership invariant broke; the data path reports it
    /// as a classified error instead of indexing (and panicking) on a
    /// bad rank.
    pub(crate) fn node(&self, server: ServerId) -> Result<&Arc<StorageNode>, ClusterError> {
        self.nodes
            .get(server.index())
            .ok_or(ClusterError::Internal("placement named an unknown server"))
    }

    /// The backing key-value store.
    pub fn kv(&self) -> &Arc<KvStore> {
        &self.kv
    }

    /// Simulate a coordinator restart: metadata (membership history,
    /// dirty table, object headers) is recovered from a snapshot of the
    /// key-value store, node disks keep their contents, and the
    /// re-integration engine starts fresh — which is exactly Algorithm
    /// 2's own rule (a new scan restarts from the table head), so resumed
    /// re-integration is correct by construction.
    pub fn restart(&self) -> Arc<Cluster> {
        let view = self.view.load();
        let kv = Arc::new(KvStore::restore(self.kv.dump(), self.cfg.kv_shards));
        if let Some(inj) = &self.fault {
            kv.set_fault_hook(Some(inj.clone() as Arc<dyn ShardFaultHook>));
        }
        Arc::new(Cluster {
            cfg: self.cfg.clone(),
            nodes: self.nodes.clone(),
            view: ArcSwap::new(view),
            view_write: Mutex::new(()),
            cache: ShardedPlacementCache::new(
                self.cfg.cache_capacity.max(1),
                self.cfg.cache_shards.max(1),
            ),
            dirty: KvDirtyTable::with_clock(kv.clone(), self.clock.clone()),
            headers: KvHeaderStore::with_clock(kv.clone(), self.clock.clone()),
            engine: Mutex::new(Reintegrator::new()),
            migration_limiter: Self::migration_limiter(&self.cfg, &self.clock),
            stop_worker: AtomicBool::new(false),
            migrated_bytes: counter_u64(0),
            read_rr: counter_u64(0),
            fault: self.fault.clone(),
            // The fabric (and its message counters) survives the restart:
            // the network does not reset because the coordinator did.
            // Breaker state is process-local health tracking and starts
            // fresh, like the re-integration engine.
            net: self.net.clone(),
            breakers: self
                .cfg
                .breaker
                .map(|b| ReplicaBreakers::new(self.cfg.servers, b)),
            clock: self.clock.clone(),
            counters: PathCounters::default(),
            kv,
        })
    }

    /// Clone-mutate-publish a new cluster view. `f` runs on a private
    /// clone of the current snapshot under the writer mutex (serialising
    /// concurrent membership changes); the result is then published
    /// atomically for the lock-free readers. Crate-internal: used by the
    /// repair module to record irregular memberships.
    pub(crate) fn update_view<R>(&self, f: impl FnOnce(&mut ClusterView) -> R) -> R {
        let _writer = self.view_write.lock();
        let mut next = ClusterView::clone(&self.view.load());
        let out = f(&mut next);
        self.view.store(Arc::new(next));
        out
    }

    /// The current cluster-view snapshot, lock-free. The returned `Arc`
    /// pins a coherent epoch for as long as the caller holds it — a
    /// concurrent resize publishes a *new* snapshot and never mutates
    /// this one.
    pub fn view_snapshot(&self) -> Arc<ClusterView> {
        self.view.load()
    }

    /// The header store (crate-internal: repair scans enumerate it).
    pub(crate) fn headers(&self) -> &KvHeaderStore {
        &self.headers
    }

    /// Current membership version.
    pub fn current_version(&self) -> VersionId {
        self.view.load().current_version()
    }

    /// Number of active (placement-eligible) servers.
    pub fn active_count(&self) -> usize {
        self.view.load().current_membership().active_count()
    }

    /// Dirty-table length.
    pub fn dirty_len(&self) -> usize {
        self.dirty.len()
    }

    /// Snapshot of the placement-cache counters (hits, misses, shard
    /// contention).
    pub fn cache_stats(&self) -> CacheSnapshot {
        self.cache.snapshot()
    }

    /// Append a dirty entry. Handles share the backing store, so a
    /// throwaway clone provides the `&mut` receiver the [`DirtyTable`]
    /// trait wants without a coordinator lock (the kv list push is
    /// shard-atomic).
    fn log_dirty(&self, entry: DirtyEntry) {
        self.dirty.clone().push_back(entry);
    }

    /// Total payload bytes moved by re-integration so far.
    pub fn migrated_bytes(&self) -> u64 {
        self.migrated_bytes.load(Ordering::Relaxed)
    }

    /// Snapshot of the degraded-path counters (retries, quorum acks,
    /// missed replicas, hedged reads, unavailable errors).
    pub fn counters(&self) -> PathSnapshot {
        self.counters.snapshot()
    }

    /// The fault injector, when the cluster runs under a [`FaultPlan`].
    pub fn fault_injector(&self) -> Option<&Arc<FaultInjector>> {
        self.fault.as_ref()
    }

    /// Counters of injected faults, when running under a [`FaultPlan`].
    pub fn fault_stats(&self) -> Option<FaultStatsSnapshot> {
        self.fault.as_ref().map(|f| f.stats())
    }

    /// The message fault fabric, when the fault plan carries a
    /// [`crate::net::NetPlan`].
    pub fn net_fabric(&self) -> Option<&Arc<NetFabric>> {
        self.net.as_ref()
    }

    /// Counters of injected message faults, when a fabric is installed.
    pub fn net_stats(&self) -> Option<NetStatsSnapshot> {
        self.net.as_ref().map(|n| n.stats())
    }

    /// Circuit-breaker counters, when breakers are configured.
    pub fn breaker_stats(&self) -> Option<BreakerSnapshot> {
        self.breakers.as_ref().map(|b| b.snapshot(self.clock.now()))
    }

    /// A fresh [`Deadline`] for one client operation, from the
    /// configured budget.
    pub(crate) fn op_deadline(&self) -> Deadline {
        Deadline::from_config(&*self.clock, self.cfg.op_deadline)
    }

    /// One message-level node operation: the single choke point every
    /// data-path send crosses, so the breaker and the fault fabric see
    /// the whole conversation.
    ///
    /// Order of business: (1) an open breaker fails the send fast,
    /// charging one backoff base on the clock (a zero-cost rejection
    /// would let poll loops spin against an open breaker without
    /// advancing virtual time); (2) the fabric rules on the message
    /// (deliver/delay/drop/partition) — unless the model checker's
    /// message-scheduler mode is active, in which case the explorer's
    /// enumerated [`MsgFate`] overrides the seed-hashed fabric; (3) the
    /// outcome feeds the breaker. Lost messages cost the sender the
    /// plan's rpc timeout on the clock before surfacing as
    /// [`NodeError::Timeout`] / [`NodeError::Partitioned`] — an
    /// `Outbound` partition and a dropped *response* still execute `op`
    /// (the node did the work; only the ack vanished), which is what
    /// makes acked-write accounting under partitions honest.
    pub(crate) fn rpc<T>(
        &self,
        server: ServerId,
        node: &StorageNode,
        op: impl Fn(&StorageNode) -> Result<T, NodeError>,
    ) -> Result<T, NodeError> {
        let idx = server.index();
        if self.breakers.is_some() || self.net.is_some() {
            // Breaker health counters and fabric budgets are
            // checker-invisible (`counter_u64` internals); every send
            // mutates this link's channel state, so declare a coarse
            // per-server write for the partial-order reduction.
            footprint_write(footprint::RPC_BASE | idx as u64);
        }
        if let Some(b) = &self.breakers {
            if !b.try_acquire(idx, self.clock.now()) {
                self.clock.sleep(self.cfg.retry.base);
                return Err(NodeError::BreakerOpen);
            }
        }
        let result = match msg_fate() {
            // Message-scheduler mode: the explorer chose this send's
            // fate; emulate it with the same clock charges and
            // execute/ack split as the fabric verdicts below.
            Some(fate) => {
                let timeout = self
                    .net
                    .as_ref()
                    .map(|n| n.rpc_timeout())
                    .unwrap_or_else(NetPlan::default_rpc_timeout);
                match fate {
                    MsgFate::Deliver => op(node),
                    MsgFate::DropRequest => {
                        self.clock.sleep(timeout);
                        Err(NodeError::Timeout)
                    }
                    MsgFate::DropResponse => {
                        let _ = op(node);
                        self.clock.sleep(timeout);
                        Err(NodeError::Timeout)
                    }
                    MsgFate::Duplicate => {
                        let r = op(node);
                        if r.is_ok() {
                            let _ = op(node);
                        }
                        r
                    }
                    MsgFate::Reorder => {
                        self.clock.sleep(timeout);
                        op(node)
                    }
                    MsgFate::PartitionedInbound => {
                        self.clock.sleep(timeout);
                        Err(NodeError::Partitioned)
                    }
                    MsgFate::PartitionedOutbound => {
                        let _ = op(node);
                        self.clock.sleep(timeout);
                        Err(NodeError::Partitioned)
                    }
                }
            }
            None => match &self.net {
                None => op(node),
                Some(net) => match net.before_send(idx) {
                    SendVerdict::Deliver { delay, duplicate } => {
                        if let Some(d) = delay {
                            self.clock.sleep(d);
                        }
                        let r = op(node);
                        if duplicate && r.is_ok() {
                            // A retransmitted request executes twice; node
                            // ops are idempotent so only the op counters see
                            // it (the duplicate's own faults are swallowed —
                            // the first reply already answered the sender).
                            let _ = op(node);
                        }
                        r
                    }
                    SendVerdict::DropRequest => {
                        self.clock.sleep(net.rpc_timeout());
                        Err(NodeError::Timeout)
                    }
                    SendVerdict::DropResponse => {
                        let _ = op(node);
                        self.clock.sleep(net.rpc_timeout());
                        Err(NodeError::Timeout)
                    }
                    SendVerdict::Partitioned { request_delivered } => {
                        if request_delivered {
                            let _ = op(node);
                        }
                        self.clock.sleep(net.rpc_timeout());
                        Err(NodeError::Partitioned)
                    }
                },
            },
        };
        if let Some(b) = &self.breakers {
            match &result {
                Ok(_) => b.record_success(idx),
                // Only message-level failures are link health signals;
                // application verdicts (NotFound, PoweredOff, DiskFull)
                // mean the link worked fine.
                Err(NodeError::Timeout | NodeError::Partitioned | NodeError::Io) => {
                    b.record_failure(idx, self.clock.now());
                }
                Err(_) => {}
            }
        }
        result
    }

    /// Where `oid`'s replicas should live right now.
    pub fn locate(&self, oid: ObjectId) -> Result<Placement, ClusterError> {
        Ok(self.cache.place_current(&self.view.load(), oid)?)
    }

    /// Write an object: place at the current version, store on the
    /// replica nodes, record the header, and log a dirty entry when the
    /// cluster is not at full power.
    ///
    /// The write is acknowledged once the configured [`WriteQuorum`] is
    /// met. The primary replica is mandatory; transiently-failing nodes
    /// are retried under the configured [`RetryPolicy`]. Secondaries
    /// still missing after retries are recorded in the dirty table —
    /// exactly like power-offloaded writes — so [`Cluster::heal_dirty`]
    /// and repair converge the object back to full replication.
    pub fn put(&self, oid: ObjectId, data: Bytes) -> Result<Placement, ClusterError> {
        let span = crate::lincheck::inv_put(oid, &data, &*self.clock);
        let result = self.put_epochs(oid, data);
        crate::lincheck::ret_put(span, &result, &*self.clock);
        result
    }

    /// [`Cluster::put`]'s body, bracketed by the lincheck facade above
    /// so recorded histories see the ack exactly when the caller does.
    fn put_epochs(&self, oid: ObjectId, data: Bytes) -> Result<Placement, ClusterError> {
        // A resize can race this write between the placement snapshot and
        // the node I/O, powering a targeted node off mid-flight. That
        // failure is an artifact of the stale snapshot, not of cluster
        // health: re-place at the new membership version and try again
        // (bounded — each extra pass requires the version to have moved).
        let mut epochs = 0;
        // One budget for the whole put, epoch re-placements included.
        let deadline = self.op_deadline();
        loop {
            let (placement, version, power_dirty) = {
                let view = self.view.load();
                // Writes compute the placement directly: a first-time oid
                // would only pay the cache-miss insert for nothing, and
                // the ring's successor table already makes the walk
                // cheap. Reads populate and profit from the cache.
                let p = view.place_current(oid)?;
                (p, view.current_version(), view.write_is_dirty())
            };
            match self.put_at(oid, &data, placement, version, power_dirty, true, deadline) {
                Err(ClusterError::Node(NodeError::PoweredOff))
                    if epochs < 4 && self.current_version() != version =>
                {
                    epochs += 1;
                }
                other => return other,
            }
        }
    }

    /// One write attempt against a fixed placement snapshot.
    /// `record_dirty` is always true on the production path; the seeded
    /// quorum-dirty mutant below passes false to skip the dirty-table
    /// entry that makes degraded writes self-healing.
    #[allow(clippy::too_many_arguments)]
    fn put_at(
        &self,
        oid: ObjectId,
        data: &Bytes,
        placement: Placement,
        version: VersionId,
        power_dirty: bool,
        record_dirty: bool,
        deadline: Deadline,
    ) -> Result<Placement, ClusterError> {
        let servers = placement.servers();
        let required = self.cfg.write_quorum.required(servers.len());
        let mut written = 0usize;
        let mut missed = 0usize;
        let mut permanent: Option<NodeError> = None;
        for (rank, &server) in servers.iter().enumerate() {
            let node = self.node(server)?;
            if rank > 0 && deadline.expired(&*self.clock) {
                // Budget gone: don't even send to the remaining
                // secondaries — count them missed and let the quorum
                // accounting below decide whether the write can still
                // degrade into an ack.
                missed += 1;
                continue;
            }
            let token = oid.raw() ^ ((server.index() as u64) << 48) ^ version.raw();
            let (result, retries) = self.cfg.retry.run_counted_deadline(
                &*self.clock,
                deadline,
                token,
                NodeError::is_transient,
                || {
                    self.rpc(server, node, |n| {
                        n.put(oid, data.clone(), version, power_dirty)
                    })
                },
            );
            self.counters.add_retries(retries as u64);
            match result {
                Ok(()) => written += 1,
                Err(e) if rank == 0 => {
                    // The primary anchors the header-version placement
                    // that degraded reads and healing rely on; a write
                    // that misses it is not acknowledged.
                    if deadline.expired(&*self.clock)
                        && matches!(e, NodeError::Timeout | NodeError::Partitioned)
                    {
                        self.counters.inc_deadline_exceeded();
                        return Err(ClusterError::DeadlineExceeded);
                    }
                    return Err(match e {
                        NodeError::Io => ClusterError::Unavailable,
                        other => ClusterError::Node(other),
                    });
                }
                Err(e) => {
                    // BreakerOpen is a routing verdict, not a node
                    // verdict: the replica is skipped and healed later,
                    // never allowed to veto the quorum as "permanent".
                    if !matches!(e, NodeError::BreakerOpen)
                        && !e.is_transient()
                        && permanent.is_none()
                    {
                        permanent = Some(e);
                    }
                    missed += 1;
                }
            }
        }
        if written < required {
            // A permanent secondary failure (e.g. DiskFull) that cost the
            // quorum is more actionable than a generic shortfall — no
            // amount of retrying will reach the quorum.
            if let Some(e) = permanent {
                return Err(ClusterError::Node(e));
            }
            if deadline.expired(&*self.clock) {
                // The budget, not the cluster, decided the shortfall:
                // fail cleanly within (just past) the deadline instead
                // of inviting a retry that would start expired.
                self.counters.inc_deadline_exceeded();
                return Err(ClusterError::DeadlineExceeded);
            }
            return Err(ClusterError::QuorumNotReached { written, required });
        }
        let is_dirty = power_dirty || missed > 0;
        self.headers.record_write(oid, version, is_dirty);
        if is_dirty && record_dirty {
            self.log_dirty(DirtyEntry::new(oid, version));
        }
        if missed > 0 {
            self.counters.inc_quorum_acks();
            self.counters.add_replicas_missed(missed as u64);
        }
        Ok(placement)
    }

    /// **Deliberately seeded quorum bug** (modelcheck builds only): a
    /// quorum write that skips the dirty-table entry for the replicas it
    /// missed. The ack looks identical to [`Cluster::put`]'s, but the
    /// missed replicas are no longer self-healing — [`Cluster::heal_dirty`]
    /// has nothing to scan. The `quorum-dirty-bug` model drives this
    /// under an always-failing secondary and asserts the dirty table is
    /// non-empty after the ack.
    #[cfg(feature = "modelcheck")]
    pub fn put_unlogged_for_modelcheck(
        &self,
        oid: ObjectId,
        data: Bytes,
    ) -> Result<Placement, ClusterError> {
        let span = crate::lincheck::inv_put(oid, &data, &*self.clock);
        let result = self.put_unlogged_body_for_modelcheck(oid, data);
        crate::lincheck::ret_put(span, &result, &*self.clock);
        result
    }

    #[cfg(feature = "modelcheck")]
    fn put_unlogged_body_for_modelcheck(
        &self,
        oid: ObjectId,
        data: Bytes,
    ) -> Result<Placement, ClusterError> {
        let (placement, version, power_dirty) = {
            let view = self.view.load();
            let p = view.place_current(oid)?;
            (p, view.current_version(), view.write_is_dirty())
        };
        self.put_at(
            oid,
            &data,
            placement,
            version,
            power_dirty,
            false,
            self.op_deadline(),
        )
    }

    /// **Deliberately seeded retransmission-safety bug** (modelcheck
    /// builds only): a quorum write built on the non-idempotent
    /// [`StorageNode::append_for_modelcheck`] store. On a fault-free
    /// fabric it is byte-for-byte identical to a first write — the
    /// appended-to slot is empty — so thread-only exploration passes
    /// exhaustively. Under the message scheduler's `Duplicate` fate the
    /// retransmitted request appends twice and a reader observes the
    /// doubled payload; the `msg-dup-append-bug` model catches it.
    #[cfg(feature = "modelcheck")]
    pub fn put_appending_for_modelcheck(
        &self,
        oid: ObjectId,
        data: Bytes,
    ) -> Result<(), ClusterError> {
        let span = crate::lincheck::inv_put(oid, &data, &*self.clock);
        let result = self.put_appending_body_for_modelcheck(oid, data);
        crate::lincheck::ret_put(span, &result, &*self.clock);
        result
    }

    #[cfg(feature = "modelcheck")]
    fn put_appending_body_for_modelcheck(
        &self,
        oid: ObjectId,
        data: Bytes,
    ) -> Result<(), ClusterError> {
        let (placement, version, power_dirty) = {
            let view = self.view.load();
            let p = view.place_current(oid)?;
            (p, view.current_version(), view.write_is_dirty())
        };
        let servers = placement.servers();
        let required = self.cfg.write_quorum.required(servers.len());
        let mut written = 0usize;
        for (rank, &server) in servers.iter().enumerate() {
            let node = self.node(server)?;
            let result = self.rpc(server, node, |n| {
                n.append_for_modelcheck(oid, data.clone(), version, power_dirty)
            });
            match result {
                Ok(()) => written += 1,
                Err(e) if rank == 0 => return Err(ClusterError::Node(e)),
                Err(_) => {}
            }
        }
        if written < required {
            return Err(ClusterError::QuorumNotReached { written, required });
        }
        self.headers.record_write(oid, version, power_dirty);
        Ok(())
    }

    /// **Deliberately seeded ack-ordering bug** (modelcheck builds
    /// only): [`Cluster::put`] with the acknowledgement surfaced
    /// *before* any replica I/O or header bookkeeping runs. Every
    /// state-based invariant still holds once the body completes — the
    /// final cluster state is byte-identical to a correct put, so
    /// assertion-style models pass exhaustively. Only a recorded
    /// history shows the violation: a reader scheduled into the window
    /// observes the old value *after* the ack, and the linearizability
    /// checker rejects the history. The `lin-ack-before-log-bug` model
    /// catches it under `--lincheck`.
    #[cfg(feature = "modelcheck")]
    pub fn put_acking_before_log_for_modelcheck(
        &self,
        oid: ObjectId,
        data: Bytes,
    ) -> Result<Placement, ClusterError> {
        let span = crate::lincheck::inv_put(oid, &data, &*self.clock);
        // BUG under test: the ack belongs after the write body; recording
        // it first is the caller-visible analogue of replying to the
        // client before the log write is durable.
        crate::lincheck::ret_put_premature(span, &*self.clock);
        self.put_epochs(oid, data)
    }

    /// Read an object from any live replica.
    ///
    /// First tries the current placement; if the object has not been
    /// re-integrated yet, falls back to the placement at its header's
    /// write version — "as long as the last version it is written is
    /// known, it is able to accurately find the servers that contain the
    /// latest replicas" (§III-E1).
    pub fn get(&self, oid: ObjectId) -> Result<Bytes, ClusterError> {
        let span = crate::lincheck::inv_get(oid, &*self.clock);
        // One budget spans the whole read, retries included.
        let deadline = self.op_deadline();
        let result = self
            .cfg
            .retry
            .run_counted_deadline(
                &*self.clock,
                deadline,
                oid.raw(),
                ClusterError::is_retryable,
                || self.get_with_acceptance(oid, ReadPolicy::FirstReplica, true, deadline),
            )
            .0;
        crate::lincheck::ret_get(span, &result, &*self.clock);
        result
    }

    /// Read an object, choosing the starting replica per `policy`.
    ///
    /// Replicas carry the version they were written at; an object
    /// rewritten at a newer membership version may leave *stale* copies
    /// at its older placements until re-integration/repair collects them.
    /// Reads therefore accept only copies whose stored version matches
    /// the authoritative header (§III-E2: the header lets the system
    /// "identify the latest data version and avoid stale data").
    pub fn get_with(&self, oid: ObjectId, policy: ReadPolicy) -> Result<Bytes, ClusterError> {
        let span = crate::lincheck::inv_get(oid, &*self.clock);
        let result = self.get_with_acceptance(oid, policy, true, self.op_deadline());
        crate::lincheck::ret_get(span, &result, &*self.clock);
        result
    }

    /// **Deliberately seeded staleness bug** (modelcheck builds only):
    /// a read that skips the header-version acceptance check, returning
    /// whatever copy it finds first. Superseded replicas awaiting
    /// collection become observable — the `hedged-stale-bug` model races
    /// this against a crash of the fresh replica and catches the stale
    /// payload escaping to the caller.
    #[cfg(feature = "modelcheck")]
    pub fn get_accepting_stale_for_modelcheck(
        &self,
        oid: ObjectId,
        policy: ReadPolicy,
    ) -> Result<Bytes, ClusterError> {
        let span = crate::lincheck::inv_get(oid, &*self.clock);
        let result = self.get_with_acceptance(oid, policy, false, self.op_deadline());
        crate::lincheck::ret_get(span, &result, &*self.clock);
        result
    }

    /// **Deliberately seeded breaker-misclassification bug** (modelcheck
    /// builds only): a read that does not count an open breaker toward
    /// the "could this miss be transient?" verdict. When every replica
    /// hides behind a tripped breaker, a committed object is reported
    /// [`ClusterError::NotFound`] — an authoritative answer fabricated
    /// from a routing veto. Thread-only exploration never trips a
    /// breaker (no message faults exist to feed it), so the bug is
    /// invisible without `--msg`; the `msg-breaker-notfound-bug` model
    /// catches it with a single enumerated fault.
    #[cfg(feature = "modelcheck")]
    pub fn get_treating_breaker_as_notfound_for_modelcheck(
        &self,
        oid: ObjectId,
    ) -> Result<Bytes, ClusterError> {
        let span = crate::lincheck::inv_get(oid, &*self.clock);
        let result = self.get_with_acceptance_opts(
            oid,
            ReadPolicy::FirstReplica,
            true,
            self.op_deadline(),
            false,
        );
        crate::lincheck::ret_get(span, &result, &*self.clock);
        result
    }

    /// [`Cluster::get_with`] with the version-acceptance check made
    /// explicit; `enforce_versions` is always true on the production
    /// path.
    fn get_with_acceptance(
        &self,
        oid: ObjectId,
        policy: ReadPolicy,
        enforce_versions: bool,
        deadline: Deadline,
    ) -> Result<Bytes, ClusterError> {
        self.get_with_acceptance_opts(oid, policy, enforce_versions, deadline, true)
    }

    /// [`Cluster::get_with_acceptance`] with the breaker classification
    /// made explicit. `breaker_is_transient` is always true on the
    /// production path: an open breaker is a routing verdict about the
    /// link, never an authoritative statement about the object, so a
    /// read that saw only tripped breakers must report `Unavailable`,
    /// not `NotFound`. The seeded mutant below passes false.
    fn get_with_acceptance_opts(
        &self,
        oid: ObjectId,
        policy: ReadPolicy,
        enforce_versions: bool,
        deadline: Deadline,
        breaker_is_transient: bool,
    ) -> Result<Bytes, ClusterError> {
        let expected = self.headers.header(oid).map(|h| h.version);
        let view = self.view.load();
        let mut candidates: Vec<ServerId> = Vec::new();
        if let Ok(p) = self.cache.place_current(&view, oid) {
            candidates.extend_from_slice(p.servers());
        }
        if let Some(ver) = expected {
            if let Ok(p) = self.cache.place_at(&view, oid, ver) {
                for &s in p.servers() {
                    if !candidates.contains(&s) {
                        candidates.push(s);
                    }
                }
            }
        }
        drop(view);
        if candidates.is_empty() {
            return Err(ClusterError::NotFound);
        }
        let start = match policy {
            ReadPolicy::FirstReplica | ReadPolicy::Hedged { .. } => 0,
            ReadPolicy::Balanced => {
                self.read_rr.fetch_add(1, Ordering::Relaxed) as usize % candidates.len()
            }
        };
        // A copy is acceptable when its stamp is at least the header
        // version we read: stale (superseded) copies are always strictly
        // older than the header, while a concurrent re-integration may
        // restamp fresh copies *past* the header snapshot we took.
        let acceptable = |stamp: ech_core::ids::VersionId| {
            !enforce_versions || expected.is_none_or(|v| stamp >= v)
        };
        if let ReadPolicy::Hedged { threshold } = policy {
            if let Some(data) = self.hedged_get(oid, &candidates, &acceptable, threshold, deadline)
            {
                return Ok(data);
            }
        }
        // Transient failures must not masquerade as authoritative misses:
        // track them and report `Unavailable` (retryable) instead of
        // `NotFound` when every failure could have been a fault. An open
        // breaker counts too — it is a routing verdict about the link,
        // never an authoritative statement about the object.
        let mut saw_transient = false;
        for &server in candidates.iter().cycle().skip(start).take(candidates.len()) {
            if deadline.expired(&*self.clock) {
                self.counters.inc_deadline_exceeded();
                return Err(ClusterError::DeadlineExceeded);
            }
            let node = self.node(server)?;
            match self.rpc(server, node, |n| n.get(oid)) {
                Ok(obj) if acceptable(obj.header.version) => return Ok(obj.data),
                Ok(_) => {}
                Err(e) => {
                    saw_transient |= e.is_transient()
                        || (breaker_is_transient && matches!(e, NodeError::BreakerOpen));
                }
            }
        }
        // Placement-guided candidates failed (e.g. the fresh copy sits on
        // a server an intermediate re-integration chose); sweep all
        // powered nodes for a version-matching copy before giving up.
        for (i, node) in self.nodes.iter().enumerate() {
            if deadline.expired(&*self.clock) {
                self.counters.inc_deadline_exceeded();
                return Err(ClusterError::DeadlineExceeded);
            }
            match self.rpc(ServerId(i as u32), node, |n| n.get(oid)) {
                Ok(obj) if acceptable(obj.header.version) => return Ok(obj.data),
                Ok(_) => {}
                Err(e) => {
                    saw_transient |= e.is_transient()
                        || (breaker_is_transient && matches!(e, NodeError::BreakerOpen));
                }
            }
        }
        if saw_transient {
            self.counters.inc_unavailable();
            Err(ClusterError::Unavailable)
        } else {
            Err(ClusterError::NotFound)
        }
    }

    /// Probe the first candidate under a per-probe latency budget of
    /// `threshold`, and hedge to the remaining candidates when the probe
    /// either failed or overran the budget on the cluster clock. `None`
    /// falls back to the caller's sequential sweep.
    ///
    /// The probe runs inline through [`Cluster::rpc`]: a slow replica
    /// charges its injected delay to the clock, so "did it answer within
    /// the threshold" is a pure clock comparison — no helper thread, no
    /// channel polling, no wall-time dependence. The threshold is a
    /// *freshness* budget, not a race: a first replica that answers late
    /// (or returns a stale copy) loses to any acceptable secondary, and
    /// is used only as the last resort.
    ///
    /// The operation's [`Deadline`] is consulted before every hedge
    /// probe: hedging is an optimisation, and a spent budget means the
    /// caller's sequential sweep should surface the failure instead.
    fn hedged_get(
        &self,
        oid: ObjectId,
        candidates: &[ServerId],
        acceptable: &impl Fn(VersionId) -> bool,
        threshold: std::time::Duration,
        deadline: Deadline,
    ) -> Option<Bytes> {
        let first_id = *candidates.first()?;
        let first = self.node(first_id).ok()?;
        let t0 = self.clock.now();
        let first_result = self.rpc(first_id, first, |n| n.get(oid));
        let overran = self.clock.now().saturating_sub(t0) >= threshold;
        if let Ok(obj) = &first_result {
            if acceptable(obj.header.version) && !overran {
                return Some(obj.data.clone());
            }
        }
        // The first replica was slow, stale, or unreachable — hedge.
        self.counters.inc_hedged_reads();
        for &s in candidates.iter().skip(1) {
            if deadline.expired(&*self.clock) {
                break;
            }
            if let Ok(obj) = self.rpc(s, self.node(s).ok()?, |n| n.get(oid)) {
                if acceptable(obj.header.version) {
                    return Some(obj.data);
                }
            }
        }
        // Every hedge lost; a late-but-acceptable original still wins
        // over giving up.
        if let Ok(obj) = first_result {
            if acceptable(obj.header.version) {
                return Some(obj.data);
            }
        }
        None
    }

    /// Resize to `active` servers (an expansion-chain prefix): records a
    /// new membership version and flips node power states. Elastic
    /// placement needs no clean-up before power-down — that is the point.
    ///
    /// # Panics
    /// Panics if `active` is outside `1..=n`.
    pub fn resize(&self, active: usize) -> VersionId {
        let span = crate::lincheck::inv_resize(active, &*self.clock);
        let version = self.resize_views(active);
        crate::lincheck::ret_resize(span, version, &*self.clock);
        version
    }

    fn resize_views(&self, active: usize) -> VersionId {
        let _writer = self.view_write.lock();
        let mut next = ClusterView::clone(&self.view.load());
        let version = next.resize(active);
        // Power ordering around the snapshot swap: servers joining the
        // membership power on *before* the new view is published (a
        // reader of the new epoch must find them accepting I/O), and
        // servers leaving power off *after* (readers still pinning the
        // old epoch hit the PoweredOff epoch-retry path, same as before).
        for (i, node) in self.nodes.iter().enumerate() {
            if i < active {
                node.set_powered(true);
            }
        }
        self.view.store(Arc::new(next));
        for (i, node) in self.nodes.iter().enumerate() {
            if i >= active {
                node.set_powered(false);
            }
        }
        version
    }

    /// Swap the placement engine, migrating every tracked object to its
    /// placement under the new backend. Returns the number of objects
    /// whose replicas moved.
    ///
    /// An engine swap changes the id→node mapping on the *same*
    /// membership, so it is sequenced like a careful resize: copies land
    /// at the new-engine placement first, the swapped view publishes
    /// second, and stale old-engine replicas are removed last. Readers
    /// pinning the pre-swap snapshot keep resolving against the old
    /// engine (their replicas are removed only after the publish, and
    /// the full-placement sweep fallback in `get` covers the removal
    /// window); readers of the new snapshot find their copies already
    /// in place. Placement caches key on the engine, so neither side
    /// ever serves the other's entries. Writes racing the swap are
    /// healed by the dirty/repair machinery like any degraded write —
    /// the writer lock held here serialises the swap against resizes,
    /// not against data-path I/O.
    pub fn set_engine(&self, engine: EngineKind) -> Result<usize, ClusterError> {
        let _writer = self.view_write.lock();
        let old = self.view.load();
        if old.engine() == engine {
            return Ok(0);
        }
        let mut next = ClusterView::clone(&old);
        // ech-allow(D4): this is the view's engine setter, not a
        // re-entrant swap — the bare-name fallback conflates it with
        // this method.
        next.set_engine(engine);
        let version = next.current_version();
        let mut moved = 0usize;
        let mut stale: Vec<(ObjectId, Vec<ServerId>)> = Vec::new();
        // ech-allow(D4): the header scan and the copy fan-out below run
        // under the writer lock on purpose — a resize landing mid-swap
        // would be clobbered by the publish of `next`, which was cloned
        // before it. An engine swap is a rare admin operation; blocking
        // resizes for its duration is the contract, and the data path
        // (get/put) never takes this lock so I/O keeps flowing.
        for oid in self.headers.all_objects() {
            let from = old.place_at(oid, version)?;
            let to = next.place_at(oid, version)?;
            if from == to {
                continue;
            }
            // Read the payload from any current replica; an object whose
            // replicas are all dark stays where it is and is left to the
            // repair scan (the swap must not turn one unreadable object
            // into a failed migration of everything else).
            let Some(obj) = from
                .servers()
                .iter()
                .filter_map(|&s| self.node(s).ok())
                .find_map(|n| self.rpc(n.id(), n, |n| n.get(oid)).ok())
            else {
                continue;
            };
            let mut copied = false;
            for &server in to.servers() {
                if from.servers().contains(&server) {
                    copied = true;
                    continue;
                }
                let node = self.node(server)?;
                if self
                    .rpc(server, node, |n| {
                        // ech-allow(D4, D6): replica copy, not an
                        // authoritative stamp — it lands at the
                        // already-stamped header version *before* the
                        // swapped view publishes, which is exactly the
                        // careful-resize order (copies first, publish
                        // second, stale removal last). The writer lock
                        // stays held across the faultable copy by
                        // design; see the header-scan note above.
                        n.put(oid, obj.data.clone(), obj.header.version, obj.header.dirty)
                    })
                    .is_ok()
                {
                    self.migrated_bytes
                        .fetch_add(obj.data.len() as u64, Ordering::Relaxed);
                    copied = true;
                }
            }
            if !copied {
                continue;
            }
            moved += 1;
            stale.push((
                oid,
                from.servers()
                    .iter()
                    .copied()
                    .filter(|s| !to.servers().contains(s))
                    .collect(),
            ));
        }
        self.view.store(Arc::new(next));
        for (oid, servers) in stale {
            for server in servers {
                if let Ok(node) = self.node(server) {
                    node.remove(oid);
                }
            }
        }
        Ok(moved)
    }

    /// **Deliberately seeded publish-order bug** (modelcheck builds
    /// only). Re-enacts the pre-publish-ordering regression: resize to
    /// `active` and migrate `oid` to its placement at the new version,
    /// but stamp the authoritative header *before* the copies land and
    /// the view is published. In the window between the stamp and the
    /// first new-version copy, a concurrent reader sees a header
    /// version no replica can satisfy and reports a spurious
    /// [`ClusterError::NotFound`]. The `seeded-stamp-bug` model drives
    /// this method so the counterexample-replay test can prove the
    /// checker finds the interleaving; analyzer rule D6 flags the same
    /// ordering statically (suppressed below, on purpose).
    #[cfg(feature = "modelcheck")]
    pub fn resize_with_seeded_stamp_bug(
        &self,
        oid: ObjectId,
        active: usize,
    ) -> Result<VersionId, ClusterError> {
        let span = crate::lincheck::inv_resize(active, &*self.clock);
        let result = self.resize_with_seeded_stamp_bug_body(oid, active);
        crate::lincheck::ret_resize_result(span, &result, &*self.clock);
        result
    }

    #[cfg(feature = "modelcheck")]
    fn resize_with_seeded_stamp_bug_body(
        &self,
        oid: ObjectId,
        active: usize,
    ) -> Result<VersionId, ClusterError> {
        let _writer = self.view_write.lock();
        let mut next = ClusterView::clone(&self.view.load());
        let version = next.resize(active);
        for (i, node) in self.nodes.iter().enumerate() {
            if i < active {
                node.set_powered(true);
            }
        }
        let data = self
            .nodes
            .iter()
            .find_map(|n| n.get(oid).ok())
            .ok_or(ClusterError::NotFound)?
            .data;
        // BUG under test: the stamp belongs after the copies and the
        // publish; running it first opens the stale-header window.
        // ech-allow(D4, D6): deliberate seeded bug — the counterexample
        // replay test needs a real stamp-before-publish violation for
        // the checker to find, and the stamp's kv retry runs under the
        // writer lock only on this intentionally wrong path.
        self.headers.record_write(oid, version, false);
        let placement = next.place_at(oid, version)?;
        for &server in placement.servers() {
            self.node(server)?
                // ech-allow(D4): same seeded bug — faultable node I/O
                // under the writer lock is part of the window under
                // test.
                .put(oid, data.clone(), version, false)
                .map_err(ClusterError::Node)?;
        }
        self.view.store(Arc::new(next));
        for (i, node) in self.nodes.iter().enumerate() {
            if i >= active {
                node.set_powered(false);
            }
        }
        Ok(version)
    }

    /// **Deliberately seeded weak-publication bug** (modelcheck builds
    /// only): [`Cluster::resize`] with the view swap downgraded to a
    /// `Relaxed` pointer store. Under sequentially consistent
    /// exploration this is indistinguishable from the correct resize —
    /// the store still lands before any later read. Only the checker's
    /// weak-memory mode exhibits the bug: the publication sits in the
    /// resizing thread's store buffer, and an observer still sees the
    /// old membership version after the resize "completed".
    #[cfg(feature = "modelcheck")]
    pub fn resize_with_relaxed_publish_for_modelcheck(&self, active: usize) -> VersionId {
        let span = crate::lincheck::inv_resize(active, &*self.clock);
        let version = self.resize_with_relaxed_publish_body(active);
        crate::lincheck::ret_resize(span, version, &*self.clock);
        version
    }

    #[cfg(feature = "modelcheck")]
    fn resize_with_relaxed_publish_body(&self, active: usize) -> VersionId {
        let _writer = self.view_write.lock();
        let mut next = ClusterView::clone(&self.view.load());
        let version = next.resize(active);
        for (i, node) in self.nodes.iter().enumerate() {
            if i < active {
                node.set_powered(true);
            }
        }
        for (i, node) in self.nodes.iter().enumerate() {
            if i >= active {
                node.set_powered(false);
            }
        }
        // BUG under test: the publication must be `Release` (rule D6's
        // dynamic analogue); `Relaxed` lets it linger in a store buffer.
        // It is also this thread's *last* store — a later write-through
        // store (e.g. the power flips above, which is why they were
        // hoisted) would drain the buffer in FIFO order and mask the
        // staleness, exactly as on TSO hardware.
        self.view.store_relaxed_for_modelcheck(Arc::new(next));
        version
    }

    /// Execute one selective re-integration task. Returns the stats of
    /// the task, or the idle reason.
    pub fn reintegrate_step(&self) -> Result<ReintegrationStats, Idle> {
        self.reintegrate_batch(1)
    }

    /// **Deliberately seeded move-ordering bug** (modelcheck builds
    /// only): plan and execute one re-integration task with the replica
    /// move inverted to remove-before-copy. A resize that powers the
    /// destination off in the window between the remove and the copy
    /// loses the only replica — the `reintegration-lost-replica-bug`
    /// model finds that interleaving.
    #[cfg(feature = "modelcheck")]
    pub fn reintegrate_step_remove_first_for_modelcheck(&self) -> Result<ReintegrationStats, Idle> {
        let span = crate::lincheck::inv_reintegrate(&*self.clock);
        let result = self
            .plan_task()
            .map(|task| self.execute_task_opts(&task, true));
        crate::lincheck::ret_reintegrate(span, &result, &*self.clock);
        result
    }

    /// Plan one migration task against the current snapshot. The engine
    /// lock serialises Algorithm 2's scan (and with it the dirty-table
    /// pops the scan performs).
    fn plan_task(&self) -> Result<MigrationTask, Idle> {
        let view = self.view.load();
        let mut engine = self.engine.lock();
        let mut dirty = self.dirty.clone();
        engine.next_task(&view, &mut dirty, &self.headers)
    }

    /// Drain up to `max_tasks` re-integration tasks in one call.
    ///
    /// With no fault plan installed the batch is planned first (the scan
    /// is inherently serial) and the replica moves then execute on
    /// parallel threads, one per task. Under fault injection — or with a
    /// batch of one — planning and execution interleave task by task,
    /// which keeps deterministic drills (`ech chaos`) byte-identical to
    /// the sequential engine.
    ///
    /// Batch planning consumes dirty entries before any byte moves;
    /// duplicate entries for one object collapse into a single task
    /// inside [`Reintegrator::next_tasks`]. The interleaved engine
    /// behaves identically: after the first task's header restamp the
    /// later entries no longer qualify and pop without planning work.
    pub fn reintegrate_batch(&self, max_tasks: usize) -> Result<ReintegrationStats, Idle> {
        let span = crate::lincheck::inv_reintegrate(&*self.clock);
        let result = self.reintegrate_batch_body(max_tasks);
        crate::lincheck::ret_reintegrate(span, &result, &*self.clock);
        result
    }

    fn reintegrate_batch_body(&self, max_tasks: usize) -> Result<ReintegrationStats, Idle> {
        let max_tasks = max_tasks.max(1);
        let workers_cap = std::thread::available_parallelism()
            .map(std::num::NonZero::get)
            .unwrap_or(1);
        // Adaptive cutover: the pooled path pays for batch planning,
        // per-task stat slots and real thread spawns, which only ever
        // amortises with both hardware parallelism and a batch worth
        // sharing. Small batches — and any machine the scheduler caps at
        // one thread — drain faster through the sequential engine.
        if self.fault.is_some() || max_tasks < 4 || workers_cap <= 1 {
            let mut total = ReintegrationStats::default();
            for planned in 0..max_tasks {
                match self.plan_task() {
                    Ok(task) => total.absorb(self.execute_task(&task)),
                    Err(idle) if planned == 0 => return Err(idle),
                    Err(_) => break,
                }
            }
            return Ok(total);
        }
        // Plan the whole batch in one engine call: `next_tasks` reads
        // the table in chunked LRANGEs and drains consumed entries with
        // one batched LPOP per chunk, instead of a table round-trip per
        // entry as the task-at-a-time loop above pays.
        let tasks: Vec<MigrationTask> = {
            let view = self.view.load();
            let mut engine = self.engine.lock();
            let mut dirty = self.dirty.clone();
            engine.next_tasks(&view, &mut dirty, &self.headers, max_tasks)?
        };
        if tasks.is_empty() {
            return Err(Idle::NothingQualifies);
        }
        // One worker thread per hardware thread, not per task: each
        // worker takes a strided share of the batch, so a small machine
        // does not drown the drain in thread-spawn overhead.
        let workers = workers_cap.min(tasks.len());
        let mut total = ReintegrationStats::default();
        if workers <= 1 {
            for task in &tasks {
                total.absorb(self.execute_task(task));
            }
            return Ok(total);
        }
        let slots: Vec<Mutex<ReintegrationStats>> = tasks
            .iter()
            .map(|_| Mutex::new(ReintegrationStats::default()))
            .collect();
        rayon::scope(|s| {
            for w in 0..workers {
                let tasks = &tasks;
                let slots = &slots;
                s.spawn(move || {
                    for (i, (task, slot)) in tasks.iter().zip(slots).enumerate() {
                        if i % workers == w {
                            let stats = self.execute_task(task);
                            *slot.lock() = stats;
                        }
                    }
                });
            }
        });
        for slot in &slots {
            total.absorb(*slot.lock());
        }
        Ok(total)
    }

    /// Execute the byte movement and header restamp of one planned task.
    fn execute_task(&self, task: &MigrationTask) -> ReintegrationStats {
        self.execute_task_opts(task, false)
    }

    /// [`Cluster::execute_task`] with the move ordering made explicit;
    /// `remove_before_copy` is always false on the production path
    /// (copy-then-remove is what makes a racing failure lose only the
    /// *copy*, never the source replica).
    fn execute_task_opts(
        &self,
        task: &MigrationTask,
        remove_before_copy: bool,
    ) -> ReintegrationStats {
        let mut stats = ReintegrationStats {
            tasks: 1,
            ..Default::default()
        };
        // A move can fail for benign reasons (the replica already moved,
        // the source raced off) or because the *network* got in the way
        // after retries. The distinction matters: a fault-failed move
        // must not let the header restamp below pretend the migration
        // happened — that would strand the object behind a header no
        // copy can satisfy.
        let fault_failed = |e: &NodeError| {
            matches!(
                e,
                NodeError::Io
                    | NodeError::Timeout
                    | NodeError::Partitioned
                    | NodeError::BreakerOpen
            )
        };
        // One budget for the whole task: every per-move retry loop
        // consults the same expiry (rule D8), so a task against a dark
        // fabric gives up instead of spending a fresh budget per move.
        let deadline = self.op_deadline();
        for m in &task.moves {
            let (Ok(src), Ok(dst)) = (self.node(m.from), self.node(m.to)) else {
                // A move naming a server outside the cluster is a planner
                // bug; skip it and let the entry be re-planned.
                continue;
            };
            let src_token = task.oid.raw() ^ ((m.from.index() as u64) << 48);
            let got = self.cfg.retry.run_deadline(
                &*self.clock,
                deadline,
                src_token,
                NodeError::is_transient,
                || self.rpc(m.from, src, |n| n.get(task.oid)),
            );
            match got {
                Ok(obj) => {
                    let bytes = obj.data.len() as u64;
                    self.throttle_migration(bytes as f64);
                    if remove_before_copy {
                        // BUG under test (seeded, modelcheck only): the
                        // source goes away before the copy exists, so a
                        // put failure below loses the replica outright.
                        // ech-allow(D7): replica removes are reconciliation messages the coordinator repeats at will; they ride the reliable queue and bypass the fabric (DESIGN §8)
                        src.remove(task.oid);
                    }
                    // The destination is active at the target version by
                    // construction; a put failure here (after transient
                    // retries) means a racing resize — or a message-level
                    // fault — in which case the entry is re-planned.
                    let dst_token = task.oid.raw() ^ ((m.to.index() as u64) << 48);
                    let put = self.cfg.retry.run_deadline(
                        &*self.clock,
                        deadline,
                        dst_token,
                        NodeError::is_transient,
                        || {
                            self.rpc(m.to, dst, |n| {
                                n.put(
                                    task.oid,
                                    obj.data.clone(),
                                    task.target_version,
                                    obj.header.dirty,
                                )
                            })
                        },
                    );
                    match put {
                        Ok(()) => {
                            if !remove_before_copy {
                                // ech-allow(D7): replica removes are reconciliation messages the coordinator repeats at will; they ride the reliable queue and bypass the fabric (DESIGN §8)
                                src.remove(task.oid);
                            }
                            stats.moves += 1;
                            stats.bytes += bytes;
                        }
                        Err(e) if fault_failed(&e) => stats.failed_moves += 1,
                        Err(_) => {}
                    }
                }
                Err(e) if fault_failed(&e) => {
                    // The source may well hold the replica — the fabric
                    // just would not let us read it.
                    stats.failed_moves += 1;
                }
                Err(_) => {
                    // Replica already moved or source raced off: skip.
                }
            }
        }
        if stats.failed_moves > 0 {
            // The migration is incomplete through no fault of the plan:
            // message-level faults blocked at least one move. Advancing
            // the header now could strand the object (no copy would
            // satisfy the new stamp), so leave the header alone and put
            // the entry back — a drain after the faults clear re-plans
            // exactly this work.
            let version = self
                .headers
                .header(task.oid)
                .map(|h| h.version)
                .unwrap_or(task.target_version);
            self.log_dirty(DirtyEntry::new(task.oid, version));
            self.migrated_bytes
                .fetch_add(stats.bytes, Ordering::Relaxed);
            return stats;
        }
        // Advance the object header to the re-integration target (see
        // Figure 6: the header version moves with every migration); the
        // dirty bit clears only at full power. Every replica of the
        // object is restamped, not just the moved ones — otherwise the
        // untouched siblings would look stale next to the new header.
        // A concurrent rewrite may have advanced the header beyond the
        // task's target; never downgrade it.
        let full_power = self.view.load().current_membership().is_full_power();
        let still_dirty = !full_power;
        let superseded = self
            .headers
            .header(task.oid)
            .is_some_and(|h| h.version > task.target_version);
        if !superseded {
            if full_power {
                self.headers.mark_clean(task.oid, task.target_version);
            } else {
                self.headers
                    .record_write(task.oid, task.target_version, true);
            }
            for &server in task.to.servers() {
                if let Ok(node) = self.node(server) {
                    // ech-allow(D7): header restamps are reconciliation messages the coordinator repeats at will; they ride the reliable queue and bypass the fabric (DESIGN §8)
                    node.restamp(task.oid, task.target_version, still_dirty);
                }
            }
        }
        self.migrated_bytes
            .fetch_add(stats.bytes, Ordering::Relaxed);
        stats
    }

    /// Block (on the cluster clock) until the migration limiter grants
    /// `bytes` of payload budget. No-op when unthrottled. Requests
    /// larger than the burst drain the bucket in instalments, so any
    /// object size makes progress.
    fn throttle_migration(&self, bytes: f64) {
        let Some(limiter) = &self.migration_limiter else {
            return;
        };
        let mut remaining = bytes;
        while remaining > 0.0 {
            let wait = {
                let mut t = limiter.lock();
                let now = self.clock.now();
                let dt = now.saturating_sub(t.last_refill);
                t.bucket.refill(dt.as_secs_f64());
                t.last_refill = now;
                remaining -= t.bucket.consume_up_to(remaining);
                if remaining <= 0.0 {
                    return;
                }
                Duration::from_secs_f64(remaining / t.bucket.rate())
            };
            // Guard dropped before sleeping: parallel executors refill
            // and drain the bucket independently.
            self.clock
                .sleep(wait.clamp(Duration::from_micros(100), Duration::from_millis(50)));
        }
    }

    /// Run re-integration until nothing more qualifies at the current
    /// version. Returns the accumulated stats.
    ///
    /// Healing runs first: quorum writes may have acked with replicas
    /// missing, and at full power Algorithm 2 pops such entries without
    /// moving anything (nothing "qualifies" when the entry's version has
    /// the same active count as the current one) — the missed replicas
    /// must be re-created before the table drains.
    pub fn reintegrate_all(&self) -> ReintegrationStats {
        let span = crate::lincheck::inv_reintegrate(&*self.clock);
        let stats = self.reintegrate_all_body();
        crate::lincheck::ret_reintegrate_all(span, &stats, &*self.clock);
        stats
    }

    fn reintegrate_all_body(&self) -> ReintegrationStats {
        self.heal_dirty();
        let batch = self.cfg.reintegration_batch.max(1);
        let mut total = ReintegrationStats::default();
        loop {
            match self.reintegrate_batch(batch) {
                Ok(s) => {
                    let stalled = s.moves == 0 && s.failed_moves > 0;
                    total.absorb(s);
                    if stalled {
                        // Every move in the batch died on message-level
                        // faults (e.g. an unhealed partition): the
                        // entries are re-logged, but draining harder now
                        // would just loop against the same dead links.
                        // Come back after the network heals.
                        return total;
                    }
                }
                Err(_) => return total,
            }
        }
    }

    /// Spawn a background re-integration worker that repeatedly calls
    /// [`Cluster::reintegrate_step`], sleeping `idle_wait` when idle.
    /// Stop it with [`Cluster::stop_background_worker`]; join the handle
    /// afterwards.
    pub fn start_background_worker(
        self: &Arc<Self>,
        idle_wait: std::time::Duration,
    ) -> std::thread::JoinHandle<()> {
        let me = Arc::clone(self);
        me.stop_worker.store(false, Ordering::Release);
        std::thread::spawn(move || {
            let batch = me.cfg.reintegration_batch.max(1);
            while !me.stop_worker.load(Ordering::Acquire) {
                match me.reintegrate_batch(batch) {
                    Ok(_) => {}
                    Err(_) => std::thread::sleep(idle_wait),
                }
            }
        })
    }

    /// Signal the background worker to exit.
    pub fn stop_background_worker(&self) {
        self.stop_worker.store(true, Ordering::Release);
    }

    /// Has [`Cluster::stop_background_worker`] been called since the
    /// worker was (last) started? This is the worker loop's own exit
    /// test, exposed so tests and model-checking scenarios can observe
    /// the flag without joining the thread.
    pub fn stop_requested(&self) -> bool {
        self.stop_worker.load(Ordering::Acquire)
    }

    /// **Deliberately seeded weak-publication bug** (modelcheck builds
    /// only): [`Cluster::stop_background_worker`] with the flag store
    /// downgraded to `Relaxed`. Sequentially consistent exploration
    /// cannot distinguish this from the correct `Release` store; the
    /// checker's weak-memory mode buffers it, and the worker keeps
    /// observing `false` after the stop "was requested" — the stale
    /// publication the `weak-stop-flag-relaxed` model must catch.
    #[cfg(feature = "modelcheck")]
    pub fn stop_background_worker_relaxed_for_modelcheck(&self) {
        // ech-allow(D5): deliberate seeded bug — the weak-memory models
        // need a real Relaxed publication for the checker to catch.
        self.stop_worker.store(true, Ordering::Relaxed);
    }

    /// Heal replicas missed by degraded (quorum) writes: for every dirty
    /// object, re-create the replicas its *header-version* placement
    /// names but no node physically holds, copying from any fresh
    /// replica. Entries logged purely for power offloading are no-ops
    /// here (all their replicas exist) and are left to the
    /// re-integration engine, which owns the actual migrations.
    ///
    /// Healing targets the header-version placement — where the write
    /// intended its replicas — rather than the current one, so it never
    /// duplicates the engine's migration work. At full power, objects
    /// that end up fully placed get their dirty bit cleared.
    pub fn heal_dirty(&self) -> RepairStats {
        let span = crate::lincheck::inv_heal(&*self.clock);
        let stats = self.heal_dirty_body();
        crate::lincheck::ret_heal(span, &stats, &*self.clock);
        stats
    }

    fn heal_dirty_body(&self) -> RepairStats {
        // One batched LRANGE instead of a per-index LINDEX each: the
        // kv-backed table locks a shard per call, so reading the scan's
        // worth of entries in one op is what keeps a large backlog from
        // turning the heal pass into a lock convoy.
        let entries: Vec<DirtyEntry> = self.dirty.get_range(0, self.dirty.len());
        // One pinned view for the whole scan: entries healed against a
        // placement snapshot, not a per-entry reload (a resize racing
        // the scan is caught by the next heal pass either way).
        let view = self.view.load();
        let full_power = view.current_membership().is_full_power();
        let mut seen = std::collections::HashSet::new();
        let mut stats = RepairStats::default();
        for entry in entries {
            let oid = entry.oid;
            if !seen.insert(oid) {
                continue;
            }
            stats.scanned += 1;
            let Some(h) = self.headers.header(oid) else {
                continue;
            };
            // Placements here are one-shot (each entry names a distinct
            // object, usually at a historical version): computing them
            // straight off the ring is cheaper than a cache round-trip
            // and keeps the shared cache free of never-again-used keys.
            let Ok(placement) = view.place_at(oid, h.version) else {
                continue;
            };
            // Most dirty entries are power-dirty, not degraded: every
            // placement target already holds the object and the copy
            // loop below would skip them all. Checking local presence
            // first keeps the common case off the (retry-wrapped,
            // fault-injected) probe path — this is what keeps the
            // reintegration drain rate intact, since `reintegrate_all`
            // leads with a full heal scan.
            let all_held = placement
                .servers()
                .iter()
                .all(|&s| self.node(s).is_ok_and(|n| n.holds(oid)));
            if !all_held {
                // One budget per healed object, shared by the source
                // probe and every target copy (rule D8): a dark fabric
                // costs one deadline per entry, not one per replica.
                let deadline = self.op_deadline();
                // Find a fresh source, retrying transient probe failures
                // so an injected fault cannot make a healthy replica
                // invisible.
                let mut source = None;
                for (i, n) in self.nodes.iter().enumerate() {
                    if !n.is_powered() {
                        continue;
                    }
                    let token = oid.raw() ^ ((i as u64) << 48) ^ 0x6EA1_0001;
                    let got = self.cfg.retry.run_deadline(
                        &*self.clock,
                        deadline,
                        token,
                        NodeError::is_transient,
                        || self.rpc(ServerId(i as u32), n, |node| node.get(oid)),
                    );
                    if let Ok(obj) = got {
                        if obj.header.version >= h.version {
                            source = Some(obj);
                            break;
                        }
                    }
                }
                let Some(obj) = source else { continue };
                for &target in placement.servers() {
                    let Ok(node) = self.node(target) else {
                        continue;
                    };
                    if node.holds(oid) {
                        continue;
                    }
                    let token = oid.raw() ^ ((target.index() as u64) << 48) ^ 0x6EA1_0002;
                    let put = self.cfg.retry.run_deadline(
                        &*self.clock,
                        deadline,
                        token,
                        NodeError::is_transient,
                        || {
                            self.rpc(target, node, |n| {
                                n.put(oid, obj.data.clone(), obj.header.version, obj.header.dirty)
                            })
                        },
                    );
                    if put.is_ok() {
                        stats.recreated += 1;
                        stats.bytes += obj.data.len() as u64;
                    }
                }
            }
            let placed_now = full_power
                && view.place_current(oid).is_ok_and(|p| {
                    p.servers()
                        .iter()
                        .all(|&s| self.node(s).is_ok_and(|n| n.holds(oid)))
                });
            if placed_now {
                self.headers.mark_clean(oid, h.version);
                for &server in placement.servers() {
                    if let Ok(node) = self.node(server) {
                        // ech-allow(D7): header restamps are reconciliation messages the coordinator repeats at will; they ride the reliable queue and bypass the fabric (DESIGN §8)
                        node.restamp(oid, h.version, false);
                    }
                }
            }
        }
        stats
    }

    /// **Deliberately seeded reconciliation bug** (modelcheck builds
    /// only): [`Cluster::heal_dirty`] followed by a plausible-looking
    /// "reconcile the header with what the disks actually hold" pass
    /// that restamps each dirty object's header *down* to the oldest
    /// surviving replica stamp. Every replica the heal created is
    /// intact and every membership invariant holds, so state assertions
    /// pass — but the downgraded header re-admits the superseded copy a
    /// past resize left at the *current* placement (acceptance is
    /// `stamp >= header`), and the next read serves it. Only a recorded
    /// history convicts the bug: a get that *began after* the newer
    /// write's ack returns the old value, and the `--lincheck` checker
    /// rejects the history (`lin-heal-restamp-bug` model).
    #[cfg(feature = "modelcheck")]
    pub fn heal_dirty_restamping_for_modelcheck(&self) -> RepairStats {
        let span = crate::lincheck::inv_heal(&*self.clock);
        let stats = self.heal_dirty_restamping_body();
        crate::lincheck::ret_heal(span, &stats, &*self.clock);
        stats
    }

    #[cfg(feature = "modelcheck")]
    fn heal_dirty_restamping_body(&self) -> RepairStats {
        let entries: Vec<DirtyEntry> = self.dirty.get_range(0, self.dirty.len());
        let stats = self.heal_dirty_body();
        let mut seen = std::collections::HashSet::new();
        for entry in entries {
            if !seen.insert(entry.oid) {
                continue;
            }
            let Some(h) = self.headers.header(entry.oid) else {
                continue;
            };
            // BUG under test: the oldest surviving stamp is where a
            // *superseded* copy lives, not where the object's latest
            // write landed — "reconciling" the header down to it
            // un-publishes every newer write to the object.
            let oldest = self
                .nodes
                .iter()
                .filter_map(|n| n.get(entry.oid).ok())
                .map(|o| o.header.version)
                .min();
            if let Some(v) = oldest {
                if v < h.version {
                    self.headers.record_write(entry.oid, v, h.dirty);
                }
            }
        }
        stats
    }

    /// Scan for nodes that crashed *silently* (an injected crash powers
    /// the node off without telling the coordinator) and record a
    /// membership version excluding them, so placement stops targeting
    /// dead disks and repair can re-replicate. Returns the newly-marked
    /// servers.
    pub fn detect_and_mark_crashed(&self) -> Vec<ServerId> {
        let _writer = self.view_write.lock();
        let view = self.view.load();
        let dark: Vec<ServerId> = (0..self.cfg.servers as u32)
            .map(ServerId)
            .filter(|&s| {
                view.current_membership().is_active(s)
                    && self.nodes.get(s.index()).is_some_and(|n| !n.is_powered())
            })
            .collect();
        if let Some((&head, tail)) = dark.split_first() {
            let mut next = ClusterView::clone(&view);
            let mut table = next
                .current_membership()
                .with_state(head, ech_core::membership::PowerState::Off);
            for &s in tail {
                table = table.with_state(s, ech_core::membership::PowerState::Off);
            }
            next.record_membership(table);
            self.view.store(Arc::new(next));
        }
        dark
    }

    /// Check that every replica of `oid` required by the current
    /// placement is physically present (used by integrity tests).
    pub fn is_fully_placed(&self, oid: ObjectId) -> bool {
        match self.locate(oid) {
            Ok(p) => p
                .servers()
                .iter()
                .all(|&s| self.node(s).is_ok_and(|n| n.holds(oid))),
            Err(_) => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(oid: u64) -> Bytes {
        Bytes::from(format!("object-{oid}-payload"))
    }

    fn cluster() -> Arc<Cluster> {
        Cluster::new(ClusterConfig::paper())
    }

    #[test]
    fn put_replicates_r_ways() {
        let c = cluster();
        let p = c.put(ObjectId(7), payload(7)).unwrap();
        assert_eq!(p.len(), 2);
        let holders = c.nodes().iter().filter(|n| n.holds(ObjectId(7))).count();
        assert_eq!(holders, 2);
        assert_eq!(c.get(ObjectId(7)).unwrap(), payload(7));
    }

    #[test]
    fn data_available_with_only_primaries_active() {
        let c = cluster();
        for i in 0..200u64 {
            c.put(ObjectId(i), payload(i)).unwrap();
        }
        // Scale down to the 2 primaries — no cleanup, no re-replication.
        c.resize(2);
        for i in 0..200u64 {
            assert_eq!(
                c.get(ObjectId(i)).unwrap(),
                payload(i),
                "object {i} lost at minimal power"
            );
        }
    }

    #[test]
    fn writes_at_partial_power_are_dirty_and_offloaded() {
        let c = cluster();
        c.resize(5);
        for i in 0..50u64 {
            let p = c.put(ObjectId(i), payload(i)).unwrap();
            for s in p.servers() {
                assert!(s.index() < 5, "placed on inactive server {s}");
            }
        }
        assert_eq!(c.dirty_len(), 50);
        // Readable immediately.
        for i in 0..50u64 {
            assert_eq!(c.get(ObjectId(i)).unwrap(), payload(i));
        }
    }

    #[test]
    fn full_power_writes_are_clean() {
        let c = cluster();
        c.put(ObjectId(1), payload(1)).unwrap();
        assert_eq!(c.dirty_len(), 0);
    }

    #[test]
    fn reintegration_moves_offloaded_data_home() {
        let c = cluster();
        c.resize(5);
        for i in 0..100u64 {
            c.put(ObjectId(i), payload(i)).unwrap();
        }
        c.resize(10);
        let stats = c.reintegrate_all();
        assert!(stats.tasks > 0, "some objects must have been offloaded");
        assert_eq!(c.dirty_len(), 0, "full power clears the dirty table");
        for i in 0..100u64 {
            assert!(
                c.is_fully_placed(ObjectId(i)),
                "object {i} not at its full-power home"
            );
            assert_eq!(c.get(ObjectId(i)).unwrap(), payload(i));
        }
        assert!(c.migrated_bytes() > 0);
    }

    #[test]
    fn partial_size_up_keeps_dirty_entries() {
        let c = cluster();
        c.resize(4);
        for i in 0..60u64 {
            c.put(ObjectId(i), payload(i)).unwrap();
        }
        c.resize(7);
        let stats = c.reintegrate_all();
        // Data moved toward v3 placement but entries survive for the
        // eventual full-power pass.
        assert_eq!(c.dirty_len(), 60);
        assert!(stats.tasks > 0);
        // All data still correct.
        for i in 0..60u64 {
            assert_eq!(c.get(ObjectId(i)).unwrap(), payload(i));
        }
    }

    #[test]
    fn reads_fall_back_to_write_version_placement() {
        let c = cluster();
        c.resize(3);
        c.put(ObjectId(42), payload(42)).unwrap();
        // Size up WITHOUT re-integrating: current placement may name
        // servers that do not hold the object yet.
        c.resize(10);
        assert_eq!(c.get(ObjectId(42)).unwrap(), payload(42));
    }

    #[test]
    fn rewrite_at_newer_version_wins() {
        let c = cluster();
        c.resize(5);
        c.put(ObjectId(9), Bytes::from("old")).unwrap();
        c.resize(6);
        c.put(ObjectId(9), Bytes::from("new")).unwrap();
        c.resize(10);
        c.reintegrate_all();
        assert_eq!(c.get(ObjectId(9)).unwrap(), Bytes::from("new"));
    }

    #[test]
    fn original_strategy_cluster_works_too() {
        let mut cfg = ClusterConfig::paper();
        cfg.strategy = Strategy::Original;
        let c = Cluster::new(cfg);
        for i in 0..50u64 {
            c.put(ObjectId(i), payload(i)).unwrap();
        }
        for i in 0..50u64 {
            assert_eq!(c.get(ObjectId(i)).unwrap(), payload(i));
        }
    }

    #[test]
    fn concurrent_writers_and_reintegration() {
        let c = cluster();
        c.resize(5);
        // Preload some dirty data.
        for i in 0..100u64 {
            c.put(ObjectId(i), payload(i)).unwrap();
        }
        c.resize(10);
        let worker = c.start_background_worker(std::time::Duration::from_millis(1));
        // Writers race with the background re-integration.
        crossbeam::scope(|s| {
            for t in 0..4u64 {
                let c = &c;
                s.spawn(move |_| {
                    for i in 0..200u64 {
                        let oid = ObjectId(1000 + t * 1000 + i);
                        c.put(oid, payload(oid.raw())).unwrap();
                    }
                });
            }
        })
        .unwrap();
        // Wait for the table to drain.
        let mut spins = 0;
        while c.dirty_len() > 0 && spins < 5000 {
            std::thread::sleep(std::time::Duration::from_millis(1));
            spins += 1;
        }
        c.stop_background_worker();
        worker.join().unwrap();
        assert_eq!(c.dirty_len(), 0);
        // Everything readable and fully placed.
        for i in 0..100u64 {
            assert!(c.is_fully_placed(ObjectId(i)));
        }
        for t in 0..4u64 {
            for i in 0..200u64 {
                let oid = ObjectId(1000 + t * 1000 + i);
                assert_eq!(c.get(oid).unwrap(), payload(oid.raw()));
            }
        }
    }

    #[test]
    fn balanced_reads_track_the_equal_work_layout() {
        // With reads spread round-robin over replicas, each server's read
        // count is proportional to the data it stores — the layout's read
        // performance proportionality claim (§III-C).
        let c = cluster();
        let objects = 4_000u64;
        for i in 0..objects {
            c.put(ObjectId(i), payload(i)).unwrap();
        }
        let writes_baseline: Vec<u64> = c.nodes().iter().map(|n| n.op_counts().0).collect();
        for round in 0..4u64 {
            for i in 0..objects {
                let _ = c
                    .get_with(ObjectId((i + round * 7) % objects), ReadPolicy::Balanced)
                    .unwrap();
            }
        }
        let stored: Vec<f64> = c.nodes().iter().map(|n| n.object_count() as f64).collect();
        let reads: Vec<f64> = c
            .nodes()
            .iter()
            .zip(&writes_baseline)
            .map(|(n, &base)| (n.op_counts().0 - base) as f64)
            .collect();
        let total_stored: f64 = stored.iter().sum();
        let total_reads: f64 = reads.iter().sum();
        for i in 0..10 {
            let stored_frac = stored[i] / total_stored;
            let read_frac = reads[i] / total_reads;
            assert!(
                (stored_frac - read_frac).abs() < 0.05,
                "server {}: stores {:.3} of data but serves {:.3} of reads",
                i + 1,
                stored_frac,
                read_frac
            );
        }
    }

    #[test]
    fn first_replica_policy_is_more_skewed_than_balanced() {
        let skew = |policy: ReadPolicy| -> f64 {
            let c = cluster();
            for i in 0..2_000u64 {
                c.put(ObjectId(i), payload(i)).unwrap();
            }
            let base: Vec<u64> = c.nodes().iter().map(|n| n.op_counts().0).collect();
            for i in 0..2_000u64 {
                let _ = c.get_with(ObjectId(i), policy).unwrap();
            }
            let reads: Vec<f64> = c
                .nodes()
                .iter()
                .zip(&base)
                .map(|(n, &b)| (n.op_counts().0 - b) as f64)
                .collect();
            let stored: Vec<f64> = c.nodes().iter().map(|n| n.object_count() as f64).collect();
            // Sum of absolute deviation between read share and data share.
            let tr: f64 = reads.iter().sum();
            let ts: f64 = stored.iter().sum();
            reads
                .iter()
                .zip(&stored)
                .map(|(r, s)| (r / tr - s / ts).abs())
                .sum()
        };
        assert!(
            skew(ReadPolicy::Balanced) < skew(ReadPolicy::FirstReplica),
            "balanced reads should track the data distribution more closely"
        );
    }

    #[test]
    fn coordinator_restart_resumes_reintegration() {
        let c = cluster();
        c.resize(5);
        for i in 0..150u64 {
            c.put(ObjectId(i), payload(i)).unwrap();
        }
        // Coordinator dies mid-flight; a new one recovers from the
        // metadata store. Node disks are untouched.
        let c2 = c.restart();
        assert_eq!(c2.dirty_len(), 150);
        assert_eq!(c2.current_version(), c.current_version());
        for i in 0..150u64 {
            assert_eq!(c2.get(ObjectId(i)).unwrap(), payload(i));
        }
        // The restarted coordinator finishes the elastic cycle.
        c2.resize(10);
        let stats = c2.reintegrate_all();
        assert!(stats.tasks > 0);
        assert_eq!(c2.dirty_len(), 0);
        for i in 0..150u64 {
            assert!(c2.is_fully_placed(ObjectId(i)));
            assert_eq!(c2.get(ObjectId(i)).unwrap(), payload(i));
        }
    }

    #[test]
    fn restart_mid_reintegration_loses_no_work() {
        let c = cluster();
        c.resize(4);
        for i in 0..200u64 {
            c.put(ObjectId(i), payload(i)).unwrap();
        }
        c.resize(10);
        // Process only part of the backlog, then "crash" the coordinator.
        for _ in 0..40 {
            let _ = c.reintegrate_step();
        }
        let c2 = c.restart();
        c2.reintegrate_all();
        assert_eq!(c2.dirty_len(), 0);
        for i in 0..200u64 {
            assert!(c2.is_fully_placed(ObjectId(i)), "object {i}");
        }
    }

    /// Placement is deterministic per config, so an unfaulted twin
    /// cluster tells a fault-plan test which servers an object lands on.
    fn placement_of(cfg: &ClusterConfig, oid: ObjectId) -> Vec<ServerId> {
        let c = Cluster::new(cfg.clone());
        c.locate(oid).unwrap().servers().to_vec()
    }

    #[test]
    fn write_quorum_required_counts() {
        assert_eq!(WriteQuorum::All.required(3), 3);
        assert_eq!(WriteQuorum::PrimaryPlusMajority.required(2), 2);
        assert_eq!(WriteQuorum::PrimaryPlusMajority.required(3), 2);
        assert_eq!(WriteQuorum::PrimaryPlusMajority.required(5), 3);
        assert_eq!(WriteQuorum::PrimaryPlusMajority.required(1), 1);
        assert_eq!(WriteQuorum::AtLeast(0).required(3), 1);
        assert_eq!(WriteQuorum::AtLeast(9).required(3), 3);
    }

    #[test]
    fn degraded_write_acks_at_quorum_and_heals() {
        use crate::fault::{FaultPlan, NodeFaultSpec};
        let mut cfg = ClusterConfig::paper();
        cfg.replicas = 3;
        let oid = ObjectId(77);
        let servers = placement_of(&cfg, oid);
        // One secondary fails every attempt of the put (the retry budget
        // is 4 attempts; the error window covers exactly its first 4
        // ops), then recovers — deterministic by construction.
        let mut plan = FaultPlan::default();
        plan.set_node(
            servers[1].index(),
            NodeFaultSpec {
                io_error_prob: 1.0,
                io_error_until_op: cfg.retry.max_attempts as u64,
                ..NodeFaultSpec::default()
            },
        );
        let c = Cluster::with_faults(cfg, plan);
        c.put(oid, payload(77)).unwrap();
        assert!(!c.is_fully_placed(oid), "one replica must be missing");
        assert_eq!(c.dirty_len(), 1, "degraded ack logs a dirty entry");
        let snap = c.counters();
        assert_eq!(snap.quorum_acks, 1);
        assert_eq!(snap.replicas_missed, 1);
        assert_eq!(snap.retries, 3);
        // Readable from the surviving replicas meanwhile.
        assert_eq!(c.get(oid).unwrap(), payload(77));
        // Healing (run first by reintegrate_all) restores the replica
        // and the table drains at full power.
        c.reintegrate_all();
        assert!(c.is_fully_placed(oid));
        assert_eq!(c.dirty_len(), 0);
        assert_eq!(c.fault_stats().unwrap().io_errors, 4);
    }

    #[test]
    fn quorum_failure_rejects_the_write() {
        use crate::fault::{FaultPlan, NodeFaultSpec};
        let mut cfg = ClusterConfig::paper();
        cfg.replicas = 3;
        let oid = ObjectId(321);
        let servers = placement_of(&cfg, oid);
        let mut plan = FaultPlan::default();
        for &s in &servers[1..] {
            plan.set_node(
                s.index(),
                NodeFaultSpec {
                    io_error_prob: 1.0,
                    ..NodeFaultSpec::default()
                },
            );
        }
        let c = Cluster::with_faults(cfg, plan);
        let err = c.put(oid, payload(321)).unwrap_err();
        assert_eq!(
            err,
            ClusterError::QuorumNotReached {
                written: 1,
                required: 2
            }
        );
        assert!(err.is_retryable());
        // The write was not acknowledged: no header, no dirty entry.
        assert_eq!(c.dirty_len(), 0);
        assert!(c.headers().header(oid).is_none());
    }

    #[test]
    fn transient_failures_surface_as_unavailable_not_notfound() {
        use crate::fault::{FaultPlan, NodeFaultSpec};
        // Unfaulted: a missing object is an authoritative NotFound.
        let c = cluster();
        assert_eq!(c.get(ObjectId(404)), Err(ClusterError::NotFound));

        // Faulted: the secondary errors on every op and the primary goes
        // dark — every probe failure could be transient, so the read
        // must report a retryable Unavailable, not NotFound.
        let mut cfg = ClusterConfig::paper();
        cfg.servers = 2;
        cfg.replicas = 2;
        cfg.kv_shards = 2;
        cfg.write_quorum = WriteQuorum::AtLeast(1);
        let oid = ObjectId(5);
        let servers = placement_of(&cfg, oid);
        let mut plan = FaultPlan::default();
        plan.set_node(
            servers[1].index(),
            NodeFaultSpec {
                io_error_prob: 1.0,
                ..NodeFaultSpec::default()
            },
        );
        let c = Cluster::with_faults(cfg, plan);
        c.put(oid, payload(5)).unwrap();
        assert_eq!(c.counters().replicas_missed, 1);
        c.nodes()[servers[0].index()].set_powered(false);
        assert_eq!(
            c.get_with(oid, ReadPolicy::FirstReplica),
            Err(ClusterError::Unavailable)
        );
        assert!(ClusterError::Unavailable.is_retryable());
        assert!(c.counters().unavailable_errors >= 1);
    }

    #[test]
    fn silent_crashes_are_detected_and_excluded() {
        use crate::fault::{FaultPlan, NodeFaultSpec};
        let mut plan = FaultPlan::default();
        plan.set_node(
            2,
            NodeFaultSpec {
                crash_at_op: Some(0),
                ..NodeFaultSpec::default()
            },
        );
        let c = Cluster::with_faults(ClusterConfig::paper(), plan);
        assert!(c.detect_and_mark_crashed().is_empty());
        // Any op on node 2 fires the injected crash; the coordinator is
        // not told (that is what makes it silent).
        assert!(c.nodes()[2].get(ObjectId(1)).is_err());
        assert!(!c.nodes()[2].is_powered());
        assert_eq!(c.active_count(), 10);
        assert_eq!(c.detect_and_mark_crashed(), vec![ServerId(2)]);
        assert_eq!(c.active_count(), 9);
        // New writes no longer target the dead disk.
        for i in 100..160u64 {
            let p = c.put(ObjectId(i), payload(i)).unwrap();
            assert!(!p.contains(ServerId(2)));
        }
        // Idempotent: nothing newly dark on a second scan.
        assert!(c.detect_and_mark_crashed().is_empty());
    }

    #[test]
    fn hedged_reads_dodge_a_slow_replica() {
        use crate::fault::{FaultPlan, NodeFaultSpec, VirtualClock};
        use std::time::Duration;
        let cfg = ClusterConfig::paper();
        let oid = ObjectId(9000);
        let servers = placement_of(&cfg, oid);
        let mut plan = FaultPlan::default();
        plan.set_node(
            servers[0].index(),
            NodeFaultSpec {
                delay: Some(Duration::from_millis(150)),
                ..NodeFaultSpec::default()
            },
        );
        // The probe's latency budget runs on the injected clock: the
        // slow replica's 150 ms delay is pure virtual time, and
        // overrunning the 2 ms threshold fires the hedge
        // deterministically.
        let clock = Arc::new(VirtualClock::new());
        let c = Cluster::with_faults_and_clock(cfg, plan, clock.clone());
        c.put(oid, payload(9000)).unwrap();
        let hedged_before = c.counters().hedged_reads;
        let t0 = clock.now();
        let data = c
            .get_with(
                oid,
                ReadPolicy::Hedged {
                    threshold: Duration::from_millis(2),
                },
            )
            .unwrap();
        assert_eq!(data, payload(9000));
        assert!(
            c.counters().hedged_reads > hedged_before,
            "overrunning the threshold must fire the hedge"
        );
        assert!(
            clock.now().saturating_sub(t0) >= Duration::from_millis(2),
            "the slow probe must have consumed the latency budget"
        );
        // A read that stays under the budget must NOT hedge: the fast
        // secondary answers within threshold once it is probed first.
        let hedged_mid = c.counters().hedged_reads;
        let fast = c
            .get_with(
                oid,
                ReadPolicy::Hedged {
                    threshold: Duration::from_secs(1),
                },
            )
            .unwrap();
        assert_eq!(fast, payload(9000));
        assert_eq!(
            c.counters().hedged_reads,
            hedged_mid,
            "a probe inside its budget must not hedge"
        );
    }

    #[test]
    fn open_breaker_fast_fails_charge_the_clock() {
        use crate::fault::{FaultPlan, NodeFaultSpec, VirtualClock};
        use crate::net::BreakerConfig;
        let mut cfg = ClusterConfig::paper();
        cfg.breaker = Some(BreakerConfig {
            failure_threshold: 2,
            cooldown: Duration::from_secs(3600),
        });
        let backoff_base = cfg.retry.base;
        let oid = ObjectId(31);
        let servers = placement_of(&cfg, oid);
        let mut plan = FaultPlan::default();
        plan.set_node(
            servers[0].index(),
            NodeFaultSpec {
                io_error_prob: 1.0,
                ..NodeFaultSpec::default()
            },
        );
        let clock = Arc::new(VirtualClock::new());
        let c = Cluster::with_faults_and_clock(cfg, plan, clock.clone());
        // Trip the primary's breaker with two message-level failures.
        let node = c.node(servers[0]).unwrap();
        for _ in 0..2 {
            assert!(matches!(
                c.rpc(servers[0], node, |n| n.get(oid)),
                Err(NodeError::Io)
            ));
        }
        // Every fast-fail must advance the virtual clock by at least one
        // backoff base — a zero-cost rejection would let a poll loop spin
        // against the open breaker without time ever passing, so the
        // cooldown (and any deadline) could never expire.
        let t0 = clock.now();
        let spins = 50u32;
        for _ in 0..spins {
            assert!(matches!(
                c.rpc(servers[0], node, |n| n.get(oid)),
                Err(NodeError::BreakerOpen)
            ));
        }
        assert!(
            clock.now().saturating_sub(t0) >= backoff_base * spins,
            "open-breaker fast-fails must charge the clock"
        );
    }

    #[test]
    fn resize_validates_bounds() {
        let c = cluster();
        let v = c.resize(6);
        assert_eq!(v, VersionId(2));
        assert_eq!(c.active_count(), 6);
        assert!(!c.nodes()[9].is_powered());
        assert!(c.nodes()[5].is_powered());
    }
}
