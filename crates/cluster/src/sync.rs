//! Synchronisation facade re-exported from [`ech_core::sync`]: real
//! primitives in production builds, instrumented ones under the
//! `modelcheck` feature. Data-path code in this crate imports its
//! atomics and mutexes from here, never from `std::sync` or
//! `parking_lot` directly (analyzer rule D5).

pub use ech_core::sync::*;

/// Coarse footprint keys for shared state the checker's instrumentation
/// cannot see (raw-locked maps, kv-store tables, the virtual clock).
/// Turns that touch the same key — at least one writing — are treated
/// as dependent by the partial-order reduction; disjoint keys commute.
/// Keys are namespaced in the upper half of the u64 so subsystems never
/// collide with per-object tokens.
pub mod footprint {
    /// Per-node object map + byte accounting: `NODE_BASE | node index`.
    pub const NODE_BASE: u64 = 1 << 32;
    /// The dirty-object table (kv-backed FIFO queue).
    pub const DIRTY: u64 = 2 << 32;
    /// The kv header store (object id → last written header).
    pub const HEADERS: u64 = 3 << 32;
    /// The shared virtual clock.
    pub const CLOCK: u64 = 4 << 32;
    /// Per-server rpc channel state (breakers, partition windows,
    /// fabric budgets): `RPC_BASE | server index`.
    pub const RPC_BASE: u64 = 5 << 32;
}
