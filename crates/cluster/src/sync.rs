//! Synchronisation facade re-exported from [`ech_core::sync`]: real
//! primitives in production builds, instrumented ones under the
//! `modelcheck` feature. Data-path code in this crate imports its
//! atomics and mutexes from here, never from `std::sync` or
//! `parking_lot` directly (analyzer rule D5).

pub use ech_core::sync::*;
