//! Deterministic fault injection for the live cluster.
//!
//! A [`FaultPlan`] declares, per node, a transient I/O error probability
//! (optionally limited to an op-count window), a crash-at-op-N event and a
//! slow-replica latency class, plus shard-unavailability windows for the
//! backing key-value store. A [`FaultInjector`] executes the plan with no
//! wall-clock or global RNG state: every decision is a pure hash of
//! `(seed, node, op-counter)`, so a run with the same plan and the same
//! operation order injects exactly the same faults.
//!
//! The injector is threaded through [`crate::node::StorageNode`] and
//! (via [`ech_kvstore::ShardFaultHook`]) through the key-value store. Both
//! hold it as an `Option<Arc<FaultInjector>>`-shaped hook, so the default
//! fault-free path pays only a branch on a pointer.

use crate::sync::{counter_u64, footprint, footprint_read, footprint_write, AtomicU64, Ordering};
use ech_kvstore::ShardFaultHook;
use std::sync::Arc;
use std::time::Duration;

/// An injectable time source for everything the data path does with
/// time: hedged-read thresholds, retry backoff sleeps, slow-replica
/// delays, kv brown-out waits. Production uses [`SystemClock`]; replay
/// harnesses (`ech chaos`, the chaos test suite) substitute a
/// [`VirtualClock`] so a drill is wall-clock-free end to end — the same
/// discipline that makes the fault decisions themselves replayable.
///
/// Data-path code must never read the wall clock directly (analyzer rule
/// D1); it asks the clock owned by the fault harness.
pub trait Clock: Send + Sync + std::fmt::Debug {
    /// Monotonic time elapsed since the clock's epoch.
    fn now(&self) -> Duration;
    /// Wait out `d`: a wall clock blocks the calling thread, a virtual
    /// clock advances its reading instead.
    fn sleep(&self, d: Duration);
}

/// The production wall clock. This is the *only* sanctioned wall-clock
/// access point on the data path; everything else goes through the
/// [`Clock`] handle so tests can replace time wholesale.
#[derive(Debug, Clone)]
pub struct SystemClock {
    // ech-allow(D1): the system clock IS the sanctioned wall-clock shim.
    epoch: std::time::Instant,
}

impl SystemClock {
    /// A wall clock anchored at construction time.
    pub fn new() -> Self {
        SystemClock {
            // ech-allow(D1): sole sanctioned Instant::now() call site.
            epoch: std::time::Instant::now(),
        }
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for SystemClock {
    fn now(&self) -> Duration {
        self.epoch.elapsed()
    }

    fn sleep(&self, d: Duration) {
        // ech-allow(D1): sole sanctioned thread::sleep call site.
        std::thread::sleep(d);
    }
}

/// A deterministic virtual clock: `sleep` advances the reading by the
/// requested amount without blocking, so seeded fault drills replay at
/// full speed and independent of machine load.
#[derive(Debug)]
pub struct VirtualClock {
    nanos: AtomicU64,
}

impl Default for VirtualClock {
    fn default() -> Self {
        VirtualClock {
            nanos: counter_u64(0),
        }
    }
}

impl VirtualClock {
    /// A virtual clock starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Manually advance the clock (test hooks).
    pub fn advance(&self, d: Duration) {
        // The backing counter is deliberately checker-invisible
        // (`counter_u64`), but clock advances order deadline checks and
        // breaker half-open probes — declare the dependence coarsely.
        footprint_write(footprint::CLOCK);
        self.nanos.fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    }
}

impl Clock for VirtualClock {
    fn now(&self) -> Duration {
        footprint_read(footprint::CLOCK);
        Duration::from_nanos(self.nanos.load(Ordering::Relaxed))
    }

    fn sleep(&self, d: Duration) {
        self.advance(d);
    }
}

/// SplitMix64: the one-shot mixer used for all fault decisions (and for
/// retry jitter, see [`crate::retry`]). Passes BigCrush as a stream; as
/// used here it is simply a high-quality hash of its input.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Map a hash to a uniform sample in `[0, 1)`. Shared with the message
/// fault plane ([`crate::net`]), which rolls its verdicts the same way.
pub(crate) fn unit(hash: u64) -> f64 {
    (hash >> 11) as f64 / (1u64 << 53) as f64
}

/// Fault behaviour of one storage node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeFaultSpec {
    /// Probability that an op fails with a transient I/O error.
    pub io_error_prob: f64,
    /// I/O errors are only injected while the node's op counter is below
    /// this bound (`u64::MAX` = forever). A bounded window models a
    /// transient brown-out that ends, letting healing converge.
    pub io_error_until_op: u64,
    /// Crash the node (disk loss + power-off) when its op counter reaches
    /// this value.
    pub crash_at_op: Option<u64>,
    /// Slow-replica latency class: added to every op on this node.
    pub delay: Option<Duration>,
}

impl Default for NodeFaultSpec {
    fn default() -> Self {
        NodeFaultSpec {
            io_error_prob: 0.0,
            io_error_until_op: u64::MAX,
            crash_at_op: None,
            delay: None,
        }
    }
}

/// An unavailability window of one key-value shard, in kv-op-count space
/// (every checked kv operation advances the counter, so retrying through
/// a window is guaranteed to exit it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardOutage {
    /// The shard index that goes dark.
    pub shard: usize,
    /// First kv-op count at which the shard is unavailable.
    pub from_op: u64,
    /// First kv-op count at which the shard is available again.
    pub until_op: u64,
}

/// A declarative fault schedule for a whole cluster.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Seed of the decision hash; same seed + same op order = same faults.
    pub seed: u64,
    /// Per-node fault behaviour, indexed by server index. Nodes beyond
    /// the vector's length are fault-free.
    pub node_faults: Vec<NodeFaultSpec>,
    /// Shard-unavailability windows of the backing key-value store.
    pub kv_outages: Vec<ShardOutage>,
    /// Message-level fault schedule (drops, duplicates, delays,
    /// partitions) executed by [`crate::net::NetFabric`]; `None` leaves
    /// the network perfect.
    pub net: Option<crate::net::NetPlan>,
}

impl FaultPlan {
    /// A plan injecting transient I/O errors with probability `prob` on
    /// every one of `nodes` nodes (no crashes, no outages).
    pub fn uniform_io_errors(nodes: usize, seed: u64, prob: f64) -> Self {
        FaultPlan {
            seed,
            node_faults: vec![
                NodeFaultSpec {
                    io_error_prob: prob,
                    ..NodeFaultSpec::default()
                };
                nodes
            ],
            ..FaultPlan::default()
        }
    }

    /// Mutate node `index`'s spec (growing the vector as needed).
    pub fn set_node(&mut self, index: usize, spec: NodeFaultSpec) -> &mut Self {
        if self.node_faults.len() <= index {
            self.node_faults.resize(index + 1, NodeFaultSpec::default());
        }
        self.node_faults[index] = spec;
        self
    }
}

/// What the injector decided about one node operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectedFault {
    /// Fail this op with a transient I/O error.
    Io,
    /// Crash the node: its disk contents vanish and it powers off.
    Crash,
}

/// Live counters of injected faults (relaxed atomics; shared by `&`).
#[derive(Debug)]
pub struct FaultStats {
    io_errors: AtomicU64,
    crashes: AtomicU64,
    delays: AtomicU64,
    kv_unavailable: AtomicU64,
}

impl Default for FaultStats {
    fn default() -> Self {
        FaultStats {
            io_errors: counter_u64(0),
            crashes: counter_u64(0),
            delays: counter_u64(0),
            kv_unavailable: counter_u64(0),
        }
    }
}

/// Plain-value copy of [`FaultStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStatsSnapshot {
    /// Transient I/O errors injected into node ops.
    pub io_errors: u64,
    /// Node crashes triggered.
    pub crashes: u64,
    /// Slow-replica delays applied.
    pub delays: u64,
    /// Key-value operations rejected as shard-unavailable.
    pub kv_unavailable: u64,
}

/// Executes a [`FaultPlan`] deterministically.
///
/// Decisions are pure functions of `(seed, node, per-node op counter)`;
/// the counters are lock-free atomics, so concurrent clients perturb only
/// the interleaving of op numbers, never the decision for a given number.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    node_ops: Vec<AtomicU64>,
    kv_ops: AtomicU64,
    stats: FaultStats,
    clock: Arc<dyn Clock>,
}

impl FaultInjector {
    /// An injector for `nodes` nodes running `plan` on the wall clock.
    pub fn new(nodes: usize, plan: FaultPlan) -> Self {
        Self::with_clock(nodes, plan, Arc::new(SystemClock::new()))
    }

    /// An injector whose time-dependent faults (slow-replica delays) and
    /// downstream consumers (retry backoff, hedging thresholds) run on
    /// `clock` — pass a [`VirtualClock`] for wall-clock-free replays.
    pub fn with_clock(nodes: usize, plan: FaultPlan, clock: Arc<dyn Clock>) -> Self {
        FaultInjector {
            node_ops: (0..nodes.max(plan.node_faults.len()))
                .map(|_| counter_u64(0))
                .collect(),
            kv_ops: counter_u64(0),
            stats: FaultStats::default(),
            plan,
            clock,
        }
    }

    /// The plan being executed.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The clock the harness (and the cluster built around it) runs on.
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    /// Counters of faults injected so far.
    pub fn stats(&self) -> FaultStatsSnapshot {
        FaultStatsSnapshot {
            io_errors: self.stats.io_errors.load(Ordering::Relaxed),
            crashes: self.stats.crashes.load(Ordering::Relaxed),
            delays: self.stats.delays.load(Ordering::Relaxed),
            kv_unavailable: self.stats.kv_unavailable.load(Ordering::Relaxed),
        }
    }

    /// Ops observed on node `index` so far.
    pub fn node_ops(&self, index: usize) -> u64 {
        self.node_ops
            .get(index)
            // ech-allow(D5): `c` is one of the per-node op counters built
            // with `counter_u64` in `new`; the closure binding hides the
            // constructed field from the counter classification.
            .map_or(0, |c| c.load(Ordering::Relaxed))
    }

    /// Decide the fate of the next op on node `index`: an optional
    /// slow-replica delay to apply, or an injected fault. Advances the
    /// node's op counter.
    pub fn before_node_op(&self, index: usize) -> Result<Option<Duration>, InjectedFault> {
        let Some(spec) = self.plan.node_faults.get(index) else {
            return Ok(None);
        };
        let Some(counter) = self.node_ops.get(index) else {
            return Ok(None);
        };
        let op = counter.fetch_add(1, Ordering::Relaxed);
        if spec.crash_at_op == Some(op) {
            self.stats.crashes.fetch_add(1, Ordering::Relaxed);
            return Err(InjectedFault::Crash);
        }
        if spec.io_error_prob > 0.0 && op < spec.io_error_until_op {
            // Pre-mix (seed, node) into a lane, then step the lane by the
            // golden-gamma Weyl increment — the standard SplitMix64
            // stream. Folding the raw op in directly (XOR or +1 steps)
            // leaves consecutive-counter structure in the mixer input,
            // which both collapses scenario diversity across nearby seeds
            // and under-disperses the error counts.
            let lane = splitmix64(self.plan.seed ^ ((index as u64) << 40));
            let stream = lane.wrapping_add(op.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let roll = unit(splitmix64(stream));
            if roll < spec.io_error_prob {
                self.stats.io_errors.fetch_add(1, Ordering::Relaxed);
                return Err(InjectedFault::Io);
            }
        }
        if let Some(d) = spec.delay {
            self.stats.delays.fetch_add(1, Ordering::Relaxed);
            return Ok(Some(d));
        }
        Ok(None)
    }
}

impl ShardFaultHook for FaultInjector {
    fn shard_available(&self, shard: usize) -> bool {
        if self.plan.kv_outages.is_empty() {
            return true;
        }
        let op = self.kv_ops.fetch_add(1, Ordering::Relaxed);
        let down = self
            .plan
            .kv_outages
            .iter()
            .any(|o| o.shard == shard && (o.from_op..o.until_op).contains(&op));
        if down {
            self.stats.kv_unavailable.fetch_add(1, Ordering::Relaxed);
        }
        !down
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic_per_op_number() {
        let plan = FaultPlan::uniform_io_errors(4, 42, 0.3);
        let a = FaultInjector::new(4, plan.clone());
        let b = FaultInjector::new(4, plan);
        let run = |inj: &FaultInjector| -> Vec<bool> {
            (0..200).map(|_| inj.before_node_op(2).is_err()).collect()
        };
        assert_eq!(run(&a), run(&b));
        assert!(a.stats().io_errors > 0, "0.3 over 200 ops must fire");
        assert!(a.stats().io_errors < 200);
    }

    #[test]
    fn error_rate_tracks_probability() {
        let inj = FaultInjector::new(1, FaultPlan::uniform_io_errors(1, 7, 0.10));
        let n = 20_000;
        let errors = (0..n).filter(|_| inj.before_node_op(0).is_err()).count();
        let rate = errors as f64 / n as f64;
        assert!((rate - 0.10).abs() < 0.01, "observed rate {rate}");
    }

    #[test]
    fn crash_fires_exactly_once_at_its_op() {
        let mut plan = FaultPlan::default();
        plan.set_node(
            1,
            NodeFaultSpec {
                crash_at_op: Some(5),
                ..NodeFaultSpec::default()
            },
        );
        let inj = FaultInjector::new(3, plan);
        for op in 0..20 {
            let r = inj.before_node_op(1);
            if op == 5 {
                assert_eq!(r, Err(InjectedFault::Crash));
            } else {
                assert_eq!(r, Ok(None));
            }
        }
        assert_eq!(inj.stats().crashes, 1);
    }

    #[test]
    fn io_window_expires() {
        let mut plan = FaultPlan {
            seed: 3,
            ..FaultPlan::default()
        };
        plan.set_node(
            0,
            NodeFaultSpec {
                io_error_prob: 1.0,
                io_error_until_op: 4,
                ..NodeFaultSpec::default()
            },
        );
        let inj = FaultInjector::new(1, plan);
        for _ in 0..4 {
            assert_eq!(inj.before_node_op(0), Err(InjectedFault::Io));
        }
        for _ in 0..10 {
            assert_eq!(inj.before_node_op(0), Ok(None));
        }
    }

    #[test]
    fn delays_and_outside_plan_nodes() {
        let mut plan = FaultPlan::default();
        plan.set_node(
            0,
            NodeFaultSpec {
                delay: Some(Duration::from_micros(50)),
                ..NodeFaultSpec::default()
            },
        );
        let inj = FaultInjector::new(2, plan);
        assert_eq!(inj.before_node_op(0), Ok(Some(Duration::from_micros(50))));
        // Node 1 has no spec; node 7 is outside the vector entirely.
        assert_eq!(inj.before_node_op(1), Ok(None));
        assert_eq!(inj.before_node_op(7), Ok(None));
        assert_eq!(inj.stats().delays, 1);
    }

    #[test]
    fn kv_outage_window_closes_as_ops_flow() {
        let plan = FaultPlan {
            seed: 0,
            kv_outages: vec![ShardOutage {
                shard: 2,
                from_op: 3,
                until_op: 6,
            }],
            ..FaultPlan::default()
        };
        let inj = FaultInjector::new(0, plan);
        let outcomes: Vec<bool> = (0..10).map(|_| inj.shard_available(2)).collect();
        assert_eq!(
            outcomes,
            vec![true, true, true, false, false, false, true, true, true, true]
        );
        // Other shards are never affected (their checks advance the same
        // global counter).
        assert!(inj.shard_available(0));
        assert_eq!(inj.stats().kv_unavailable, 3);
    }
}
