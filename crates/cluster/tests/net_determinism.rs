//! Determinism properties of the message fault plane: every verdict is
//! a pure hash of `(seed, link, per-link message counter)`, so the fate
//! sequence of one link must not care how traffic to *other* links
//! interleaves with it; the stats counters must account for each
//! injected fault exactly once; and an explicit heal must override a
//! partition window that is still mid-flight on the scripted clock.

use ech_cluster::{
    LinkFaultSpec, NetFabric, NetPlan, PartitionDirection, PartitionWindow, SendVerdict,
    VirtualClock,
};
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

const NODES: usize = 4;

fn fabric(plan: NetPlan) -> NetFabric {
    NetFabric::new(NODES, plan, Arc::new(VirtualClock::new()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Same `(seed, link, counter)` → same verdict, regardless of how
    /// much traffic other links carry in between: a fabric that only
    /// ever talks to link 0 and a fabric whose link-0 sends are
    /// interleaved with arbitrary traffic to links 1..4 must produce
    /// byte-identical link-0 fate sequences.
    #[test]
    fn link_fates_are_independent_of_interleaved_traffic(
        seed in 0u64..u64::MAX,
        drop_p in 0.0f64..0.9,
        dup_p in 0.0f64..0.9,
        reorder_p in 0.0f64..0.9,
        schedule in proptest::collection::vec(1usize..NODES, 0..48),
    ) {
        let spec = LinkFaultSpec {
            drop_prob: drop_p,
            dup_prob: dup_p,
            reorder_prob: reorder_p,
            delay: Some((Duration::from_micros(100), Duration::from_micros(500))),
        };
        let quiet = fabric(NetPlan::uniform(seed, spec));
        let baseline: Vec<SendVerdict> =
            (0..24).map(|_| quiet.before_send(0)).collect();

        let busy = fabric(NetPlan::uniform(seed, spec));
        let mut noise = schedule.iter().cycle();
        let mut interleaved = Vec::with_capacity(baseline.len());
        for i in 0..baseline.len() {
            // Burst a varying amount of other-link traffic first.
            for _ in 0..(i % 3) {
                if let Some(&dst) = noise.next() {
                    busy.before_send(dst);
                }
            }
            interleaved.push(busy.before_send(0));
        }
        prop_assert_eq!(baseline, interleaved);
    }

    /// Every fault the fabric injects shows up in the stats exactly
    /// once, and nothing else does: with no latency band configured,
    /// `duplicated` equals the `Deliver { duplicate: true }` verdicts,
    /// `dropped` equals the lost messages, `reordered` equals the late
    /// deliveries (the only source of a `Some(delay)` here) — and
    /// `delayed` stays zero, because a reorder charge is not a latency
    /// charge.
    #[test]
    fn stats_count_each_fault_exactly_once(
        seed in 0u64..u64::MAX,
        drop_p in 0.0f64..0.9,
        dup_p in 0.0f64..0.9,
        reorder_p in 0.0f64..0.9,
        sends in proptest::collection::vec(0usize..NODES, 1..96),
    ) {
        let spec = LinkFaultSpec {
            drop_prob: drop_p,
            dup_prob: dup_p,
            reorder_prob: reorder_p,
            delay: None,
        };
        let net = fabric(NetPlan::uniform(seed, spec));
        let (mut drops, mut dups, mut late) = (0u64, 0u64, 0u64);
        for &dst in &sends {
            match net.before_send(dst) {
                SendVerdict::Deliver { delay, duplicate } => {
                    if duplicate {
                        dups += 1;
                    }
                    if delay.is_some() {
                        late += 1;
                    }
                }
                SendVerdict::DropRequest | SendVerdict::DropResponse => drops += 1,
                SendVerdict::Partitioned { .. } => unreachable!("no windows scripted"),
            }
        }
        let stats = net.stats();
        prop_assert_eq!(stats.sends, sends.len() as u64);
        prop_assert_eq!(stats.dropped, drops);
        prop_assert_eq!(stats.duplicated, dups);
        prop_assert_eq!(stats.reordered, late);
        prop_assert_eq!(stats.delayed, 0, "reorder-only lateness is not a latency charge");
        prop_assert_eq!(stats.partitioned_sends, 0);
    }
}

/// `heal_partitions()` must be visible to a window that is still
/// covering the clock: the cut lifts immediately, and because
/// partitioned verdicts never consumed a counter tick, the post-heal
/// fate sequence is exactly the sequence a never-partitioned fabric
/// produces from message zero.
#[test]
fn heal_overrides_an_in_flight_window() {
    let spec = LinkFaultSpec {
        drop_prob: 0.4,
        dup_prob: 0.3,
        reorder_prob: 0.2,
        delay: Some((Duration::from_micros(50), Duration::from_micros(200))),
    };
    let mut plan = NetPlan::uniform(7, spec);
    plan.partitions.push(PartitionWindow {
        from: Duration::ZERO,
        until: Duration::MAX,
        isolated: vec![0],
        direction: PartitionDirection::Both,
    });
    let cut = fabric(plan);

    assert!(cut.partition_active(), "window covers the clock from t=0");
    for _ in 0..5 {
        assert_eq!(
            cut.before_send(0),
            SendVerdict::Partitioned {
                request_delivered: false
            }
        );
    }
    assert_eq!(cut.stats().partitioned_sends, 5);

    cut.heal_partitions();
    assert!(
        !cut.partition_active(),
        "an explicit heal overrides a window whose scripted end has not arrived"
    );

    let control = fabric(NetPlan::uniform(7, spec));
    let healed: Vec<SendVerdict> = (0..16).map(|_| cut.before_send(0)).collect();
    let fresh: Vec<SendVerdict> = (0..16).map(|_| control.before_send(0)).collect();
    assert_eq!(
        healed, fresh,
        "partitioned sends must not have consumed counter ticks"
    );
    assert_eq!(
        cut.stats().partitioned_sends,
        5,
        "no new partition verdicts after heal"
    );
}
