//! Partition-tolerance property tests over the message fault plane:
//! under scripted (possibly asymmetric) partitions, quorum writes must
//! either fail cleanly within their deadline budget or acknowledge with
//! the missed replicas recorded in the dirty table — and once the
//! partition heals, healing plus re-integration must converge the store
//! with zero acknowledged writes lost.
//!
//! Every message verdict is a pure hash of `(seed, link, message
//! counter)` and every window runs on a [`VirtualClock`], so each case
//! replays identically.

use bytes::Bytes;
use ech_cluster::{
    BreakerConfig, Clock, Cluster, ClusterConfig, FaultPlan, LinkFaultSpec, NetPlan,
    PartitionDirection, PartitionWindow, VirtualClock,
};
use ech_core::ids::ObjectId;
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

/// Per-operation budget: generous next to the 2 ms rpc timeout, so only
/// genuinely cut links spend it.
const OP_BUDGET: Duration = Duration::from_millis(100);

/// Allowed overshoot past the budget: one in-flight rpc timeout plus one
/// clamped backoff sleep (the deadline is checked *between* sends, never
/// mid-flight).
const BUDGET_SLACK: Duration = Duration::from_millis(10);

fn value(oid: u64) -> Bytes {
    Bytes::from(format!("partition-object-{oid}"))
}

/// The history-recording test feeds a process-global recorder, so with
/// `--features lincheck` every test in this binary serialises against
/// it: concurrent cluster traffic from a sibling test would interleave
/// same-oid operations from a *different* cluster into the recording
/// and fabricate violations. Without the feature this is a unit.
#[cfg(feature = "lincheck")]
static RECORDER_GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[cfg(feature = "lincheck")]
fn recorder_exclusive() -> std::sync::MutexGuard<'static, ()> {
    RECORDER_GATE.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(not(feature = "lincheck"))]
fn recorder_exclusive() {}

fn direction(pick: u8) -> PartitionDirection {
    match pick % 3 {
        0 => PartitionDirection::Both,
        1 => PartitionDirection::Inbound,
        _ => PartitionDirection::Outbound,
    }
}

/// A 10-node, 3-replica cluster (quorum = primary + 1) behind a message
/// fabric running `net`, with breakers and the deadline budget on.
fn partitioned_cluster(net: NetPlan) -> (Arc<Cluster>, Arc<VirtualClock>) {
    let mut cfg = ClusterConfig::paper();
    cfg.replicas = 3;
    cfg.op_deadline = Some(OP_BUDGET);
    cfg.breaker = Some(BreakerConfig {
        failure_threshold: 4,
        cooldown: Duration::from_millis(10),
    });
    let plan = FaultPlan {
        net: Some(net),
        ..FaultPlan::default()
    };
    let clock = Arc::new(VirtualClock::new());
    let c = Cluster::with_faults_and_clock(cfg, plan, clock.clone());
    (c, clock)
}

/// Post-heal convergence: heal degraded writes, drain the dirty table,
/// restore replication.
fn converge(c: &Cluster) {
    c.heal_dirty();
    c.reintegrate_all();
    c.repair();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The acceptance drill, generalised: an asymmetric partition
    /// isolating 3 of 10 servers (30%) holds for the whole write phase.
    /// Every write either acks — and is then immediately readable, and
    /// still readable after heal — or fails within its deadline budget.
    #[test]
    fn no_acked_write_lost_across_partition_heal(
        seed in 0u64..(1u64 << 48),
        iso_start in 0u8..10,
        dir_pick in 0u8..3,
        objects in 20u64..60,
    ) {
        let _gate = recorder_exclusive();
        let isolated: Vec<u32> = (0..3).map(|k| ((iso_start as u32) + k) % 10).collect();
        let net = NetPlan {
            seed,
            partitions: vec![PartitionWindow {
                from: Duration::ZERO,
                until: Duration::MAX, // holds until the explicit heal
                isolated: isolated.clone(),
                direction: direction(dir_pick),
            }],
            rpc_timeout: Duration::from_millis(2),
            ..NetPlan::default()
        };
        let (c, clock) = partitioned_cluster(net);

        let mut acked: Vec<u64> = Vec::new();
        let mut failed = 0u64;
        for i in 0..objects {
            let oid = ObjectId(i);
            let t0 = clock.now();
            match c.put(oid, value(i)) {
                Ok(_) => {
                    acked.push(i);
                    // Read-your-writes while the partition is still up:
                    // the ack implies the primary is on our side of the
                    // cut.
                    let got = c.get(oid);
                    match got {
                        Ok(v) => prop_assert_eq!(v, value(i)),
                        Err(e) => prop_assert!(
                            false,
                            "read-back of acked object {} failed mid-partition: {}",
                            i, e
                        ),
                    }
                }
                Err(_) => {
                    failed += 1;
                    let spent = clock.now().saturating_sub(t0);
                    prop_assert!(
                        spent <= OP_BUDGET + BUDGET_SLACK,
                        "failed write must give up within its budget, spent {spent:?}"
                    );
                }
            }
        }
        // 30% of the ring is dark: unless every placement dodged it,
        // some writes must have degraded (missed secondaries => dirty
        // entries) or failed; either way the fabric refused sends.
        let net_stats = c.net_fabric().expect("fabric installed").stats();
        prop_assert!(net_stats.partitioned_sends > 0, "the cut must have been hit");

        c.net_fabric().expect("fabric installed").heal_partitions();
        // Let the breaker cooldown elapse (on a wall clock this happens
        // by itself; the virtual clock only moves when something sleeps,
        // and breaker fast-fails only charge a backoff base each).
        clock.advance(Duration::from_millis(20));
        converge(&c);

        prop_assert_eq!(c.dirty_len(), 0, "dirty table drains after heal");
        prop_assert_eq!(c.under_replicated(), 0, "replication fully restored");
        for &i in &acked {
            match c.get(ObjectId(i)) {
                Ok(v) => prop_assert_eq!(v, value(i)),
                Err(e) => prop_assert!(false, "acked object {} lost after heal: {}", i, e),
            }
        }
        // Sanity: the run exercised something (all-acked and all-failed
        // are both legal outcomes of a seeded layout, but not both).
        prop_assert_eq!(acked.len() as u64 + failed, objects);
    }
}

/// A partitioned *primary* with a tiny budget: the write must fail with
/// `DeadlineExceeded` (not hang, not mislabel) and stay inside the
/// budget on the clock.
#[test]
fn partitioned_primary_fails_within_deadline_budget() {
    use ech_cluster::ClusterError;
    let _gate = recorder_exclusive();
    // Find object 7's primary under the 10-node/3-replica geometry by
    // asking a fault-free twin first.
    let probe = {
        let mut cfg = ClusterConfig::paper();
        cfg.replicas = 3;
        Cluster::new(cfg)
    };
    let oid = ObjectId(7);
    let primary = probe.locate(oid).expect("placement").servers()[0];

    let net = NetPlan {
        seed: 42,
        partitions: vec![PartitionWindow {
            from: Duration::ZERO,
            until: Duration::MAX,
            isolated: vec![primary.index() as u32],
            direction: PartitionDirection::Both,
        }],
        rpc_timeout: Duration::from_millis(2),
        ..NetPlan::default()
    };
    let mut cfg = ClusterConfig::paper();
    cfg.replicas = 3;
    cfg.op_deadline = Some(Duration::from_millis(3));
    let plan = FaultPlan {
        net: Some(net),
        ..FaultPlan::default()
    };
    let clock = Arc::new(VirtualClock::new());
    let c = Cluster::with_faults_and_clock(cfg, plan, clock.clone());

    let t0 = clock.now();
    let err = c.put(oid, value(7)).expect_err("primary is unreachable");
    assert_eq!(err, ClusterError::DeadlineExceeded);
    let spent = clock.now().saturating_sub(t0);
    assert!(
        spent <= Duration::from_millis(3) + BUDGET_SLACK,
        "clean failure must stay near the budget, spent {spent:?}"
    );
    assert!(
        c.counters().deadline_exceeded >= 1,
        "the budget exhaustion must be counted"
    );
}

/// The seeded stress mix: flaky links (drops + latency), two scripted
/// partition windows — one inbound, one outbound — and resizes in the
/// middle of both. After the last window closes on the clock, the
/// cluster must converge with zero acked-write loss.
#[test]
fn seeded_partition_and_resize_stress_converges() {
    let _gate = recorder_exclusive();
    let net = NetPlan {
        seed: 0xEC0_5EED,
        default_link: LinkFaultSpec {
            drop_prob: 0.02,
            dup_prob: 0.01,
            reorder_prob: 0.01,
            delay: Some((Duration::from_micros(20), Duration::from_micros(120))),
        },
        partitions: vec![
            PartitionWindow {
                from: Duration::from_millis(5),
                until: Duration::from_millis(400),
                isolated: vec![7, 8, 9],
                direction: PartitionDirection::Inbound,
            },
            PartitionWindow {
                from: Duration::from_millis(600),
                until: Duration::from_millis(900),
                isolated: vec![2, 3],
                direction: PartitionDirection::Outbound,
            },
        ],
        rpc_timeout: Duration::from_millis(2),
        ..NetPlan::default()
    };
    let (c, clock) = partitioned_cluster(net);

    let mut acked: Vec<u64> = Vec::new();
    for i in 0..120u64 {
        match i {
            // Into the first window: shrink while {7,8,9} are dark.
            20 => {
                c.resize(6);
            }
            // Grow back while the window is still open: the powered-on
            // tail is placement-eligible but unreachable — writes must
            // degrade, not wedge.
            40 => {
                c.resize(10);
            }
            // Between the windows.
            60 => {
                clock.advance(Duration::from_millis(150));
                c.resize(8);
            }
            // Into the outbound window (acks vanish, ops execute).
            80 => {
                clock.advance(Duration::from_millis(80));
                c.resize(10);
            }
            _ => {}
        }
        if c.put(ObjectId(i), value(i)).is_ok() {
            acked.push(i);
        }
    }
    // Run the clock past the last window so the fabric heals on
    // schedule (no explicit heal override in this test).
    clock.advance(Duration::from_secs(2));
    assert!(
        !c.net_fabric().expect("fabric installed").partition_active(),
        "all windows must have closed on the clock"
    );

    let net_stats = c.net_fabric().expect("fabric installed").stats();
    assert!(
        net_stats.partitioned_sends > 0,
        "partitions must be exercised"
    );
    assert!(net_stats.dropped > 0, "the 2% drop rate must bite");
    assert!(net_stats.delayed > 0, "link latency must be charged");

    converge(&c);
    // A second pass mops up work the first drain re-planned (entries
    // re-logged behind links that have since healed).
    converge(&c);

    assert!(
        acked.len() >= 60,
        "most writes must ack through the chaos, got {}",
        acked.len()
    );
    assert_eq!(c.dirty_len(), 0, "dirty table drains after both heals");
    assert_eq!(c.under_replicated(), 0, "replication fully restored");
    for &i in &acked {
        assert_eq!(c.get(ObjectId(i)).unwrap(), value(i), "object {i}");
    }
    let breakers = c.breaker_stats().expect("breakers configured");
    assert!(
        breakers.trips > 0,
        "sustained cuts must have tripped at least one breaker"
    );
}

/// History-level acceptance for the acceptance drill: record writes
/// into a held partition, mid-cut read-backs, the heal, convergence,
/// and a full post-heal read sweep — then check the history offline.
/// This is where the spec's fault vocabulary earns its keep: a failed
/// put is ambiguous (the checker branches on whether it applied), a
/// mid-cut read error is information-free `Unavailable`, and only the
/// authoritative `NotFound` constrains the order.
#[cfg(feature = "lincheck")]
#[test]
fn recorded_partition_history_is_linearizable() {
    use ech_lincheck::{check_kv, Outcome, DEFAULT_BUDGET};

    let _gate = recorder_exclusive();
    const OBJECTS: u64 = 24;
    let net = NetPlan {
        seed: 0x11C_5EED,
        partitions: vec![PartitionWindow {
            from: Duration::ZERO,
            until: Duration::MAX, // holds until the explicit heal
            isolated: vec![1, 4, 7],
            direction: PartitionDirection::Both,
        }],
        rpc_timeout: Duration::from_millis(2),
        ..NetPlan::default()
    };
    let (c, clock) = partitioned_cluster(net);
    ech_lincheck::recorder::install();

    let mut acked = 0u64;
    let mut failed = 0u64;
    for i in 0..OBJECTS {
        match c.put(ObjectId(i), value(i)) {
            Ok(_) => {
                acked += 1;
                // Mid-cut read-back: whatever comes back is recorded.
                let _ = c.get(ObjectId(i));
            }
            Err(_) => failed += 1,
        }
    }
    c.net_fabric().expect("fabric installed").heal_partitions();
    clock.advance(Duration::from_millis(20));
    converge(&c);
    // Post-heal sweep over *every* key: an acked write must read back
    // as written, a failed one as either applied or never-happened —
    // and the checker, not this test, decides which outcomes cohere.
    for i in 0..OBJECTS {
        let _ = c.get(ObjectId(i));
    }

    let rec = ech_lincheck::recorder::take().expect("recording installed");
    match check_kv(&rec.events, DEFAULT_BUDGET) {
        Outcome::Linearizable { keys, ops, .. } => {
            assert_eq!(keys as u64, OBJECTS, "every key reaches the checker");
            assert_eq!(
                ops as u64,
                OBJECTS + acked + OBJECTS,
                "every keyed operation reaches the checker"
            );
        }
        other => panic!(
            "recorded partition history rejected ({acked} acked, {failed} failed): {other:?}"
        ),
    }
}
