//! Model-based property test for the live cluster: under any sequence of
//! puts, overwrites, resizes, re-integration steps and repairs, a read
//! must always return the latest written value — the storage system's
//! fundamental contract, which no amount of elasticity may break.

use bytes::Bytes;
use ech_cluster::{Cluster, ClusterConfig};
use ech_core::ids::ObjectId;
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum Op {
    /// Write object `oid % population` with a fresh generation stamp.
    Put(u16),
    /// Read an object and compare against the model.
    Get(u16),
    /// Resize to `1 + (k % 10)` active servers (clamped to >= r).
    Resize(u8),
    /// Run re-integration to quiescence at the current version.
    Reintegrate,
    /// Run a repair scan (should be a no-op without crashes).
    Repair,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0u16..200).prop_map(Op::Put),
        4 => (0u16..200).prop_map(Op::Get),
        1 => (0u8..255).prop_map(Op::Resize),
        1 => Just(Op::Reintegrate),
        1 => Just(Op::Repair),
    ]
}

fn value(oid: u16, generation: u32) -> Bytes {
    Bytes::from(format!("oid{oid}gen{generation}"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn reads_always_return_the_latest_write(ops in proptest::collection::vec(op_strategy(), 1..80)) {
        let cluster = Cluster::new(ClusterConfig::paper());
        let mut model: HashMap<u16, u32> = HashMap::new();
        let mut generation = 0u32;

        for op in ops {
            match op {
                Op::Put(oid) => {
                    generation += 1;
                    cluster.put(ObjectId(oid as u64), value(oid, generation)).unwrap();
                    model.insert(oid, generation);
                }
                Op::Get(oid) => {
                    let got = cluster.get(ObjectId(oid as u64));
                    match model.get(&oid) {
                        None => prop_assert!(got.is_err(), "read of never-written {oid} succeeded"),
                        Some(&gen) => {
                            prop_assert_eq!(got.unwrap(), value(oid, gen), "stale read of {}", oid);
                        }
                    }
                }
                Op::Resize(k) => {
                    let active = 2 + (k as usize % 9); // 2..=10
                    cluster.resize(active);
                }
                Op::Reintegrate => {
                    cluster.reintegrate_all();
                }
                Op::Repair => {
                    let stats = cluster.repair();
                    prop_assert_eq!(stats.unrecoverable, 0, "no crashes => nothing lost");
                }
            }
        }

        // Final sweep: every written object readable with its last value.
        for (&oid, &gen) in &model {
            prop_assert_eq!(
                cluster.get(ObjectId(oid as u64)).unwrap(),
                value(oid, gen),
                "final read of {}", oid
            );
        }

        // Return to full power, drain, and check full placement.
        cluster.resize(10);
        cluster.reintegrate_all();
        prop_assert_eq!(cluster.dirty_len(), 0);
        for &oid in model.keys() {
            prop_assert!(
                cluster.is_fully_placed(ObjectId(oid as u64)),
                "object {} not fully placed after final drain", oid
            );
        }
    }
}
