//! Chaos property tests: deterministic fault injection (transient I/O
//! errors, silent node crashes, kv shard outages) interleaved with
//! resizes must never lose an acknowledged write, and the degraded
//! cluster must converge back to full replication — under-replication
//! zero, dirty table drained — once the faults clear.
//!
//! Every fault decision is a pure hash of `(seed, node, op-counter)`, so
//! each generated case replays identically; there is no wall-clock or
//! global-RNG nondeterminism to flake on.

use bytes::Bytes;
use ech_cluster::{Cluster, ClusterConfig, FaultPlan, ShardOutage};
use ech_core::ids::ObjectId;
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Transient-error windows close once a node has seen this many ops, so
/// the convergence phase runs fault-free.
const IO_WINDOW: u64 = 200;

#[derive(Debug, Clone)]
enum Op {
    /// Write the next fresh object (unique oid per put).
    Put,
    /// Resize to `3 + k % 8` active servers (3..=10, >= replicas).
    Resize(u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        5 => Just(Op::Put),
        1 => (0u8..255).prop_map(Op::Resize),
    ]
}

fn chaos_config() -> ClusterConfig {
    let mut cfg = ClusterConfig::paper();
    cfg.replicas = 3;
    cfg
}

fn value(oid: u64) -> Bytes {
    Bytes::from(format!("chaos-object-{oid}"))
}

/// Write with maintenance-assisted retries: a put that trips over a
/// silent crash gets the membership corrected (detect + repair) and
/// another chance, mirroring how a real coordinator reacts to a failed
/// write. Returns whether the write was acknowledged.
fn put_with_maintenance(c: &Cluster, oid: ObjectId) -> bool {
    for attempt in 0..3 {
        match c.put(oid, value(oid.raw())) {
            Ok(_) => return true,
            Err(_) if attempt < 2 => {
                c.detect_and_mark_crashed();
                c.repair();
            }
            Err(_) => return false,
        }
    }
    false
}

/// Exhaust every node's transient-error window (op counters are the
/// fault clock, so idle nodes must be ticked forward), firing any
/// still-pending crash events along the way.
fn drain_fault_windows(c: &Cluster) {
    let inj = c.fault_injector().expect("chaos clusters run a plan");
    for (i, node) in c.nodes().iter().enumerate() {
        while inj.node_ops(i) < IO_WINDOW {
            let _ = node.get(ObjectId(u64::MAX));
        }
    }
}

/// Clear faults' aftermath: fix membership, re-replicate, return to full
/// power, heal degraded writes and drain the dirty table.
fn converge(c: &Cluster) {
    c.detect_and_mark_crashed();
    c.repair();
    c.resize(10);
    c.repair();
    c.reintegrate_all();
    c.repair();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn acked_writes_survive_chaos(
        seed in 0u64..(1u64 << 48),
        rate_pct in 5u32..16,
        (crash_a, crash_b_off) in (0u8..10, 0u8..9),
        (c1, c2) in (5u64..40, 5u64..40),
        ops in proptest::collection::vec(op_strategy(), 15..50),
    ) {
        let node_a = crash_a as usize;
        let node_b = ((crash_a + 1 + crash_b_off) % 10) as usize;
        let rate = rate_pct as f64 / 100.0;
        let mut plan = FaultPlan::uniform_io_errors(10, seed, rate);
        for spec in &mut plan.node_faults {
            spec.io_error_until_op = IO_WINDOW;
        }
        plan.node_faults[node_a].crash_at_op = Some(c1);
        plan.node_faults[node_b].crash_at_op = Some(c2);
        let c = Cluster::with_faults(chaos_config(), plan);

        let mut acked: BTreeMap<u64, Bytes> = BTreeMap::new();
        let mut next_oid = 0u64;
        for op in ops {
            match op {
                Op::Put => {
                    let oid = ObjectId(next_oid);
                    next_oid += 1;
                    if put_with_maintenance(&c, oid) {
                        acked.insert(oid.raw(), value(oid.raw()));
                        // Read-your-write: an acked put is immediately
                        // readable, faults notwithstanding.
                        let mut got = c.get(oid);
                        if got.is_err() {
                            c.detect_and_mark_crashed();
                            c.repair();
                            got = c.get(oid);
                        }
                        match got {
                            Ok(v) => prop_assert_eq!(v, value(oid.raw())),
                            Err(e) => prop_assert!(
                                false,
                                "read-back of acked object {} failed: {}",
                                oid.raw(),
                                e
                            ),
                        }
                    }
                    // Degraded-mode upkeep, as a coordinator would do.
                    if !c.detect_and_mark_crashed().is_empty() {
                        c.repair();
                    }
                }
                Op::Resize(k) => {
                    c.resize(3 + (k as usize) % 8);
                }
            }
        }

        drain_fault_windows(&c);
        let stats = c.fault_stats().unwrap();
        prop_assert_eq!(stats.crashes, 2, "both planned crashes fired");
        converge(&c);

        prop_assert_eq!(c.dirty_len(), 0, "dirty table drains at full power");
        prop_assert_eq!(c.under_replicated(), 0, "replication fully restored");
        for (oid, val) in &acked {
            let got = c.get(ObjectId(*oid));
            match got {
                Ok(v) => prop_assert_eq!(&v, val),
                Err(e) => prop_assert!(false, "acked object {} lost: {}", oid, e),
            }
        }
    }
}

/// A pinned scenario exercising everything at once — 8% transient error
/// rate, two silent crashes, kv outages on both metadata shards, three
/// resizes — with exact expectations on the injected-fault counters.
#[test]
fn fixed_seed_chaos_with_kv_outages_converges() {
    let mut plan = FaultPlan::uniform_io_errors(10, 0xEC0_5EED, 0.08);
    for spec in &mut plan.node_faults {
        spec.io_error_until_op = IO_WINDOW;
    }
    plan.node_faults[3].crash_at_op = Some(12);
    plan.node_faults[7].crash_at_op = Some(25);
    // Outage windows on the shards actually holding the dirty table and
    // the header hash, so the metadata path must retry through them.
    let probe = ech_kvstore::KvStore::new(10);
    plan.kv_outages = vec![
        ShardOutage {
            shard: probe.shard_of("ech:dirty"),
            from_op: 10,
            until_op: 40,
        },
        ShardOutage {
            shard: probe.shard_of("ech:headers"),
            from_op: 60,
            until_op: 100,
        },
    ];
    let c = Cluster::with_faults(chaos_config(), plan);

    let mut acked = Vec::new();
    for i in 0..80u64 {
        match i {
            20 => {
                c.resize(6);
            }
            45 => {
                c.resize(9);
            }
            65 => {
                c.resize(10);
            }
            _ => {}
        }
        let oid = ObjectId(i);
        if put_with_maintenance(&c, oid) {
            acked.push(i);
        }
        if !c.detect_and_mark_crashed().is_empty() {
            c.repair();
        }
    }
    assert!(
        acked.len() >= 70,
        "most writes must ack, got {}",
        acked.len()
    );

    drain_fault_windows(&c);
    let stats = c.fault_stats().unwrap();
    assert_eq!(stats.crashes, 2);
    assert!(stats.io_errors > 0, "the 8% error rate must bite");
    assert!(
        stats.kv_unavailable > 0,
        "the shard outages must be exercised"
    );

    converge(&c);
    assert_eq!(c.dirty_len(), 0);
    assert_eq!(c.under_replicated(), 0);
    for &i in &acked {
        assert_eq!(c.get(ObjectId(i)).unwrap(), value(i), "object {i}");
    }
    let path = c.counters();
    assert!(
        path.retries > 0,
        "transient faults must have caused data-path retries"
    );
}
