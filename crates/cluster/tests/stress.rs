//! Multithreaded stress test over the lock-free read path: 8 threads
//! (4 writers, 4 readers) hammer the cluster while the main thread
//! drives elastic resizes and a seeded fault plan injects transient I/O
//! errors. Every reader works off an epoch-pinned view snapshot, so the
//! invariants it checks must hold *within* that snapshot no matter how
//! many membership changes race it:
//!
//! - coherent epoch: the snapshot's current version is recorded in its
//!   own history, and placement under it succeeds;
//! - primary-replica invariant (Algorithm 1): replicas are distinct,
//!   active under the snapshot's membership, and exactly one sits on a
//!   primary server (the resize set keeps >= r-1 active secondaries, so
//!   the §III-B special case never relaxes it);
//! - read-your-write: an acknowledged put is readable through faults.

use bytes::Bytes;
use ech_cluster::{Cluster, ClusterConfig, FaultPlan};
use ech_core::ids::ObjectId;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Transient-error windows close after this many ops per node.
const IO_WINDOW: u64 = 80;
const WRITERS: u64 = 4;
const PUTS_PER_WRITER: u64 = 150;
/// Resize targets: every size keeps both primaries plus at least
/// `replicas - 1` secondaries active, so placements always carry
/// exactly one primary replica.
const SIZES: &[usize] = &[6, 4, 8, 10];

fn value(oid: u64) -> Bytes {
    Bytes::from(format!("stress-object-{oid}"))
}

/// Placement invariants under one pinned snapshot.
fn check_snapshot_invariants(c: &Cluster, oid: u64) {
    let view = c.view_snapshot();
    let ver = view.current_version();
    let membership = view.current_membership();
    let placement = view
        .place_at(ObjectId(oid), ver)
        .expect("the snapshot's own current version is always recorded");
    let servers = placement.servers();
    let distinct: BTreeSet<_> = servers.iter().collect();
    assert_eq!(
        distinct.len(),
        servers.len(),
        "replicas must land on distinct servers (epoch {ver})"
    );
    assert_eq!(servers.len(), view.replicas(), "full replication factor");
    for s in servers {
        assert!(
            membership.is_active(*s),
            "replica on inactive server {s:?} under its own snapshot (epoch {ver})"
        );
    }
    let primaries = servers
        .iter()
        .filter(|s| view.layout().is_primary(**s))
        .count();
    assert_eq!(
        primaries,
        1,
        "exactly one replica on a primary (epoch {ver}, active {})",
        membership.active_count()
    );
}

/// Exhaust every node's transient-error window so convergence runs
/// fault-free (op counters are the fault clock).
fn drain_fault_windows(c: &Cluster) {
    let inj = c.fault_injector().expect("stress cluster runs a plan");
    for (i, node) in c.nodes().iter().enumerate() {
        while inj.node_ops(i) < IO_WINDOW {
            let _ = node.get(ObjectId(u64::MAX));
        }
    }
}

#[test]
fn concurrent_writers_readers_and_resizes_keep_invariants() {
    let mut plan = FaultPlan::uniform_io_errors(10, 0x57E5_5EED, 0.05);
    for spec in &mut plan.node_faults {
        spec.io_error_until_op = IO_WINDOW;
    }
    let mut cfg = ClusterConfig::paper();
    cfg.replicas = 3;
    let c = Arc::new(Cluster::with_faults(cfg, plan));

    let acked: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    let resize_count = Arc::new(AtomicU64::new(0));
    let done = Arc::new(AtomicBool::new(false));

    std::thread::scope(|s| {
        // Readers spin until `done`; set it on every exit path (panics
        // included) or the scope would join against live spinners.
        struct DoneOnDrop(Arc<AtomicBool>);
        impl Drop for DoneOnDrop {
            fn drop(&mut self) {
                self.0.store(true, Ordering::Relaxed);
            }
        }
        let _done_guard = DoneOnDrop(Arc::clone(&done));
        let mut writers = Vec::new();
        for w in 0..WRITERS {
            let c = Arc::clone(&c);
            let acked = Arc::clone(&acked);
            let resize_count = Arc::clone(&resize_count);
            writers.push(s.spawn(move || {
                for i in 0..PUTS_PER_WRITER {
                    // Epoch transitions are driven from inside the load:
                    // every 40th put each writer resizes the cluster, so
                    // transitions always overlap live readers/writers no
                    // matter how a single-CPU box schedules us.
                    if i % 40 == 39 {
                        let k = (w * PUTS_PER_WRITER + i) as usize;
                        c.resize(SIZES[k % SIZES.len()]);
                        resize_count.fetch_add(1, Ordering::Relaxed);
                    }
                    let oid = w * PUTS_PER_WRITER + i;
                    let mut ok = false;
                    for _ in 0..8 {
                        if c.put(ObjectId(oid), value(oid)).is_ok() {
                            ok = true;
                            break;
                        }
                    }
                    assert!(ok, "put {oid} failed through 8 transient retries");
                    acked.lock().unwrap().push(oid);
                }
            }));
        }
        for r in 0..4u64 {
            let c = Arc::clone(&c);
            let acked = Arc::clone(&acked);
            let done = Arc::clone(&done);
            s.spawn(move || {
                let mut rng = 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(r + 1);
                let mut checked = 0u64;
                while !done.load(Ordering::Relaxed) || checked == 0 {
                    let sample = {
                        let a = acked.lock().unwrap();
                        if a.is_empty() {
                            None
                        } else {
                            rng = rng
                                .wrapping_mul(6364136223846793005)
                                .wrapping_add(1442695040888963407);
                            Some(a[(rng >> 33) as usize % a.len()])
                        }
                    };
                    let Some(oid) = sample else {
                        std::thread::yield_now();
                        continue;
                    };
                    // Read-your-write through transient faults.
                    let got = (0..8).find_map(|_| c.get(ObjectId(oid)).ok());
                    assert_eq!(
                        got.as_ref(),
                        Some(&value(oid)),
                        "acked object {oid} must read back"
                    );
                    check_snapshot_invariants(&c, oid);
                    checked += 1;
                }
                assert!(checked > 0, "reader {r} verified nothing");
            });
        }
        // Wait out the writers, then release the readers. A writer
        // panic propagates here; the drop guard still frees the
        // readers so the scope can join everything.
        for h in writers {
            if let Err(p) = h.join() {
                std::panic::resume_unwind(p);
            }
        }
        done.store(true, Ordering::Relaxed);
    });
    let resizes = resize_count.load(Ordering::Relaxed);
    assert_eq!(
        resizes,
        WRITERS * (PUTS_PER_WRITER / 40),
        "every in-load epoch transition must have run"
    );

    // Converge: full power, drain, re-replicate; then every acked write
    // is present and fully placed.
    drain_fault_windows(&c);
    c.resize(10);
    c.reintegrate_all();
    c.repair();
    assert_eq!(c.dirty_len(), 0, "dirty table drains at full power");
    assert_eq!(c.under_replicated(), 0, "replication fully restored");
    let acked = acked.lock().unwrap();
    assert_eq!(acked.len() as u64, WRITERS * PUTS_PER_WRITER);
    for &oid in acked.iter() {
        assert_eq!(c.get(ObjectId(oid)).unwrap(), value(oid), "object {oid}");
    }
    // The read path populated the sharded placement cache.
    let cache = c.cache_stats();
    assert!(
        cache.hits + cache.misses > 0,
        "readers must exercise the placement cache: {cache:?}"
    );
}
