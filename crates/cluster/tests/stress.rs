//! Multithreaded stress test over the lock-free read path: 8 threads
//! (4 writers, 4 readers) hammer the cluster while the main thread
//! drives elastic resizes and a seeded fault plan injects transient I/O
//! errors. Every reader works off an epoch-pinned view snapshot, so the
//! invariants it checks must hold *within* that snapshot no matter how
//! many membership changes race it:
//!
//! - coherent epoch: the snapshot's current version is recorded in its
//!   own history, and placement under it succeeds;
//! - primary-replica invariant (Algorithm 1): replicas are distinct,
//!   active under the snapshot's membership, and exactly one sits on a
//!   primary server (the resize set keeps >= r-1 active secondaries, so
//!   the §III-B special case never relaxes it);
//! - read-your-write: an acknowledged put is readable through faults.

use bytes::Bytes;
use ech_cluster::{Cluster, ClusterConfig, FaultPlan};
use ech_core::ids::ObjectId;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Transient-error windows close after this many ops per node.
const IO_WINDOW: u64 = 80;
const WRITERS: u64 = 4;
const PUTS_PER_WRITER: u64 = 150;
/// Resize targets: every size keeps both primaries plus at least
/// `replicas - 1` secondaries active, so placements always carry
/// exactly one primary replica.
const SIZES: &[usize] = &[6, 4, 8, 10];

fn value(oid: u64) -> Bytes {
    Bytes::from(format!("stress-object-{oid}"))
}

/// The history-recording test feeds a process-global recorder, so with
/// `--features lincheck` every test in this binary serialises against
/// it: concurrent cluster traffic from a sibling test would interleave
/// same-oid operations from a *different* cluster into the recording
/// and fabricate violations. Without the feature this is a unit.
#[cfg(feature = "lincheck")]
static RECORDER_GATE: Mutex<()> = Mutex::new(());

#[cfg(feature = "lincheck")]
fn recorder_exclusive() -> std::sync::MutexGuard<'static, ()> {
    RECORDER_GATE.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(not(feature = "lincheck"))]
fn recorder_exclusive() {}

/// Placement invariants under one pinned snapshot.
fn check_snapshot_invariants(c: &Cluster, oid: u64) {
    let view = c.view_snapshot();
    let ver = view.current_version();
    let membership = view.current_membership();
    let placement = view
        .place_at(ObjectId(oid), ver)
        .expect("the snapshot's own current version is always recorded");
    let servers = placement.servers();
    let distinct: BTreeSet<_> = servers.iter().collect();
    assert_eq!(
        distinct.len(),
        servers.len(),
        "replicas must land on distinct servers (epoch {ver})"
    );
    assert_eq!(servers.len(), view.replicas(), "full replication factor");
    for s in servers {
        assert!(
            membership.is_active(*s),
            "replica on inactive server {s:?} under its own snapshot (epoch {ver})"
        );
    }
    let primaries = servers
        .iter()
        .filter(|s| view.layout().is_primary(**s))
        .count();
    assert_eq!(
        primaries,
        1,
        "exactly one replica on a primary (epoch {ver}, active {})",
        membership.active_count()
    );
}

/// Exhaust every node's transient-error window so convergence runs
/// fault-free (op counters are the fault clock).
fn drain_fault_windows(c: &Cluster) {
    let inj = c.fault_injector().expect("stress cluster runs a plan");
    for (i, node) in c.nodes().iter().enumerate() {
        while inj.node_ops(i) < IO_WINDOW {
            let _ = node.get(ObjectId(u64::MAX));
        }
    }
}

#[test]
fn concurrent_writers_readers_and_resizes_keep_invariants() {
    let _gate = recorder_exclusive();
    let mut plan = FaultPlan::uniform_io_errors(10, 0x57E5_5EED, 0.05);
    for spec in &mut plan.node_faults {
        spec.io_error_until_op = IO_WINDOW;
    }
    let mut cfg = ClusterConfig::paper();
    cfg.replicas = 3;
    let c = Arc::new(Cluster::with_faults(cfg, plan));

    let acked: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    let resize_count = Arc::new(AtomicU64::new(0));
    let done = Arc::new(AtomicBool::new(false));

    std::thread::scope(|s| {
        // Readers spin until `done`; set it on every exit path (panics
        // included) or the scope would join against live spinners.
        struct DoneOnDrop(Arc<AtomicBool>);
        impl Drop for DoneOnDrop {
            fn drop(&mut self) {
                self.0.store(true, Ordering::Relaxed);
            }
        }
        let _done_guard = DoneOnDrop(Arc::clone(&done));
        let mut writers = Vec::new();
        for w in 0..WRITERS {
            let c = Arc::clone(&c);
            let acked = Arc::clone(&acked);
            let resize_count = Arc::clone(&resize_count);
            writers.push(s.spawn(move || {
                for i in 0..PUTS_PER_WRITER {
                    // Epoch transitions are driven from inside the load:
                    // every 40th put each writer resizes the cluster, so
                    // transitions always overlap live readers/writers no
                    // matter how a single-CPU box schedules us.
                    if i % 40 == 39 {
                        let k = (w * PUTS_PER_WRITER + i) as usize;
                        c.resize(SIZES[k % SIZES.len()]);
                        resize_count.fetch_add(1, Ordering::Relaxed);
                    }
                    let oid = w * PUTS_PER_WRITER + i;
                    let mut ok = false;
                    for _ in 0..8 {
                        if c.put(ObjectId(oid), value(oid)).is_ok() {
                            ok = true;
                            break;
                        }
                    }
                    assert!(ok, "put {oid} failed through 8 transient retries");
                    acked.lock().unwrap().push(oid);
                }
            }));
        }
        for r in 0..4u64 {
            let c = Arc::clone(&c);
            let acked = Arc::clone(&acked);
            let done = Arc::clone(&done);
            s.spawn(move || {
                let mut rng = 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(r + 1);
                let mut checked = 0u64;
                while !done.load(Ordering::Relaxed) || checked == 0 {
                    let sample = {
                        let a = acked.lock().unwrap();
                        if a.is_empty() {
                            None
                        } else {
                            rng = rng
                                .wrapping_mul(6364136223846793005)
                                .wrapping_add(1442695040888963407);
                            Some(a[(rng >> 33) as usize % a.len()])
                        }
                    };
                    let Some(oid) = sample else {
                        std::thread::yield_now();
                        continue;
                    };
                    // Read-your-write through transient faults.
                    let got = (0..8).find_map(|_| c.get(ObjectId(oid)).ok());
                    assert_eq!(
                        got.as_ref(),
                        Some(&value(oid)),
                        "acked object {oid} must read back"
                    );
                    check_snapshot_invariants(&c, oid);
                    checked += 1;
                }
                assert!(checked > 0, "reader {r} verified nothing");
            });
        }
        // Wait out the writers, then release the readers. A writer
        // panic propagates here; the drop guard still frees the
        // readers so the scope can join everything.
        for h in writers {
            if let Err(p) = h.join() {
                std::panic::resume_unwind(p);
            }
        }
        done.store(true, Ordering::Relaxed);
    });
    let resizes = resize_count.load(Ordering::Relaxed);
    assert_eq!(
        resizes,
        WRITERS * (PUTS_PER_WRITER / 40),
        "every in-load epoch transition must have run"
    );

    // Converge: full power, drain, re-replicate; then every acked write
    // is present and fully placed.
    drain_fault_windows(&c);
    c.resize(10);
    c.reintegrate_all();
    c.repair();
    assert_eq!(c.dirty_len(), 0, "dirty table drains at full power");
    assert_eq!(c.under_replicated(), 0, "replication fully restored");
    let acked = acked.lock().unwrap();
    assert_eq!(acked.len() as u64, WRITERS * PUTS_PER_WRITER);
    for &oid in acked.iter() {
        assert_eq!(c.get(ObjectId(oid)).unwrap(), value(oid), "object {oid}");
    }
    // The read path populated the sharded placement cache.
    let cache = c.cache_stats();
    assert!(
        cache.hits + cache.misses > 0,
        "readers must exercise the placement cache: {cache:?}"
    );
}

/// History-level acceptance for the stress mix: record every
/// public-API call of a scaled-down run (3 writers and 2 readers
/// racing in-load resizes) through the lincheck facade, then check
/// the recorded history against the sequential spec offline.
/// Fault-free on purpose — an errored put is ambiguous (the checker
/// must branch on whether it applied), so keeping faults out keeps
/// the per-key searches tight and makes any violation purely an
/// ordering bug in the concurrent read/write/resize protocols.
#[cfg(feature = "lincheck")]
#[test]
fn recorded_stress_history_is_linearizable() {
    use ech_lincheck::{check_kv, Outcome, DEFAULT_BUDGET};

    let _gate = recorder_exclusive();
    let mut cfg = ClusterConfig::paper();
    cfg.replicas = 3;
    let c = Arc::new(Cluster::new(cfg));
    ech_lincheck::recorder::install();

    // Few keys on purpose: contention is what gives the checker real
    // reordering work; per-key op counts stay far under the budget.
    const KEYS: u64 = 4;
    const PUTS: u64 = 10;
    const GETS: u64 = 12;
    std::thread::scope(|s| {
        for w in 0..3u64 {
            let c = Arc::clone(&c);
            s.spawn(move || {
                for i in 0..PUTS {
                    let oid = 1 + (w.wrapping_mul(7).wrapping_add(i)) % KEYS;
                    c.put(ObjectId(oid), Bytes::from(format!("h-{w}-{i}")))
                        .expect("fault-free put");
                    // Epoch transitions overlap the recorded traffic.
                    if i == PUTS / 2 {
                        c.resize(SIZES[w as usize % SIZES.len()]);
                    }
                }
            });
        }
        for r in 0..2u64 {
            let c = Arc::clone(&c);
            s.spawn(move || {
                for i in 0..GETS {
                    let oid = 1 + r.wrapping_add(i) % KEYS;
                    // Any verdict is recorded; a pre-first-put read
                    // legitimately sees the authoritative NotFound.
                    let _ = c.get(ObjectId(oid));
                }
            });
        }
    });
    // Spec-level no-ops close the run: they must not confuse the
    // checker (they never reach the per-key partitions).
    c.resize(10);
    c.heal_dirty();
    c.reintegrate_all();

    let rec = ech_lincheck::recorder::take().expect("recording installed");
    match check_kv(&rec.events, DEFAULT_BUDGET) {
        Outcome::Linearizable { keys, ops, .. } => {
            assert_eq!(keys as u64, KEYS, "every key reaches the checker");
            assert_eq!(
                ops as u64,
                3 * PUTS + 2 * GETS,
                "every keyed operation reaches the checker"
            );
        }
        other => panic!("recorded stress history rejected: {other:?}"),
    }
}
