//! Failure handling on the live cluster: a crash loses a disk (unlike a
//! power-down, which keeps data), repair re-replicates from survivors,
//! and the elastic machinery keeps running through it all.
//!
//! Run with: `cargo run -p ech-apps --example failure_recovery`

use bytes::Bytes;
use ech_cluster::{Cluster, ClusterConfig};
use ech_core::ids::{ObjectId, ServerId};

fn payload(i: u64) -> Bytes {
    Bytes::from(format!("object-{i}"))
}

fn main() {
    let c = Cluster::new(ClusterConfig::paper());
    for i in 0..1_000u64 {
        c.put(ObjectId(i), payload(i)).unwrap();
    }
    println!("wrote 1000 objects across 10 servers");

    // A power-down is not a failure: data stays on disk.
    c.resize(7);
    println!(
        "\npowered down to 7 servers: under-replicated objects = {}",
        c.under_replicated()
    );
    println!("(replicas on servers 8-10 are offline but intact)");

    // A crash IS a failure: server 5's disk is gone.
    let lost = c.crash_node(ServerId(4));
    println!("\ncrashed server 5: {lost} replicas lost with its disk");
    let mut readable = 0;
    for i in 0..1_000u64 {
        if c.get(ObjectId(i)).is_ok() {
            readable += 1;
        }
    }
    println!("still readable from surviving replicas: {readable}/1000");

    let stats = c.repair();
    println!(
        "\nrepair: scanned {}, re-created {} replicas ({} bytes), unrecoverable {}",
        stats.scanned, stats.recreated, stats.bytes, stats.unrecoverable
    );

    // Bring the crashed server back (blank disk) and let repair restore
    // its share.
    c.revive_node(ServerId(4));
    let stats = c.repair();
    println!(
        "revived server 5 (empty disk): repair re-created {} replicas onto it",
        stats.recreated
    );
    println!("server 5 now holds {} objects", c.nodes()[4].object_count());

    // Everything intact end to end.
    for i in 0..1_000u64 {
        assert_eq!(c.get(ObjectId(i)).unwrap(), payload(i));
    }
    println!("\nall 1000 objects verified intact");
}
