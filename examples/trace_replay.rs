//! Trace replay: synthesize the CC-a trace, run the four elasticity
//! policies over it, and print the Figure 8 window plus the Table II
//! machine-hour ratios.
//!
//! Run with: `cargo run -p ech-apps --example trace_replay --release`

use ech_traces::{analyze, synth, PolicyKind, PolicyParams};

fn main() {
    let trace = synth::cc_a();
    println!(
        "trace {}: {} bins of {}s, {:.0} TB processed, peak {:.0} MB/s",
        trace.spec.name,
        trace.load.len(),
        trace.load.bin_seconds,
        trace.load.total_bytes() / 1e12,
        trace.load.peak() / 1e6
    );

    let params = PolicyParams::for_trace(&trace);
    let analysis = analyze(&trace, &params);

    // A 250-minute window like Figure 8, subsampled every 10 minutes.
    println!(
        "\n{:>7}  {:>6} {:>12} {:>13} {:>18}",
        "t(min)", "ideal", "original CH", "primary+full", "primary+selective"
    );
    for minute in (0..=250).step_by(10) {
        let idx = minute.min(trace.load.len() - 1);
        let row: Vec<u32> = PolicyKind::all()
            .iter()
            .map(|&k| analysis.result(k).servers[idx])
            .collect();
        println!(
            "{:>7}  {:>6} {:>12} {:>13} {:>18}",
            minute, row[0], row[1], row[2], row[3]
        );
    }

    println!("\nmachine-hours relative to ideal (Table II row CC-a):");
    for k in [
        PolicyKind::OriginalCh,
        PolicyKind::PrimaryFull,
        PolicyKind::PrimarySelective,
    ] {
        println!(
            "  {:<18} {:.2}",
            k.label(),
            analysis.relative_machine_hours(k)
        );
    }
    println!(
        "\nmachine-hours saved vs original CH: full {:.1}%, selective {:.1}%",
        100.0 * analysis.savings_vs_original(PolicyKind::PrimaryFull),
        100.0 * analysis.savings_vs_original(PolicyKind::PrimarySelective)
    );
}
