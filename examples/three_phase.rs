//! The §V-A 3-phase workload experiment in miniature (Figures 3 and 7):
//! compares client throughput over time for no-resizing, original CH,
//! and primary+selective while the cluster powers 4 of 10 servers down
//! for the middle phase.
//!
//! Run with: `cargo run -p ech-apps --example three_phase --release`

use ech_sim::experiments::three_phase;
use ech_sim::ElasticityMode;

fn main() {
    let phase2 = 120.0; // seconds of light-load valley
    let modes = [
        ElasticityMode::NoResizing,
        ElasticityMode::OriginalCh,
        ElasticityMode::PrimarySelective,
    ];

    let runs: Vec<_> = modes
        .iter()
        .map(|&m| three_phase(m, phase2, 1500.0))
        .collect();

    // Print a coarse time series: throughput (MB/s) every 10 seconds.
    println!(
        "{:>6}  {:>14} {:>14} {:>14}",
        "t(s)", "no-resizing", "original CH", "selective"
    );
    let max_t = runs
        .iter()
        .map(|r| r.samples.last().map(|s| s.time).unwrap_or(0.0))
        .fold(0.0, f64::max);
    let mut t = 0.0;
    while t <= max_t {
        let row: Vec<f64> = runs
            .iter()
            .map(|r| {
                r.samples
                    .iter()
                    .find(|s| s.time >= t)
                    .map(|s| s.client_throughput / 1e6)
                    .unwrap_or(0.0)
            })
            .collect();
        println!(
            "{:>6.0}  {:>14.1} {:>14.1} {:>14.1}",
            t, row[0], row[1], row[2]
        );
        t += 20.0;
    }

    println!("\nrecovery delay after phase 2 (time to regain 80% of peak):");
    for r in &runs {
        match r.recovery_delay(0.8) {
            Some(d) => println!("  {:<14} {:>6.1}s", r.mode_label, d),
            None => println!("  {:<14} never (within the run)", r.mode_label),
        }
    }
    println!("\nmachine-seconds consumed:");
    for r in &runs {
        println!("  {:<14} {:>10.0}", r.mode_label, r.machine_seconds);
    }
}
