//! A live elastic cluster under concurrent load: client threads write
//! and read real object bytes while the cluster resizes underneath them
//! and a background worker re-integrates offloaded data.
//!
//! This demonstrates the full §IV data path — Algorithm 1 placement,
//! versioned membership, the Redis-like dirty table, and selective
//! re-integration — running multi-threaded in one process.
//!
//! Run with: `cargo run -p ech-apps --example elastic_cluster_live --release`

use bytes::Bytes;
use ech_cluster::{Cluster, ClusterConfig};
use ech_core::ids::ObjectId;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

fn payload(oid: u64) -> Bytes {
    Bytes::from(format!("payload-of-object-{oid}"))
}

fn main() {
    let cluster = Cluster::new(ClusterConfig::paper());
    let worker = cluster.start_background_worker(Duration::from_millis(1));
    let written = AtomicU64::new(0);
    let read_ok = AtomicU64::new(0);

    crossbeam::scope(|s| {
        // 4 writer threads, 2 reader threads.
        for t in 0..4u64 {
            let cluster = &cluster;
            let written = &written;
            s.spawn(move |_| {
                for i in 0..2_000u64 {
                    let oid = ObjectId(t * 100_000 + i);
                    cluster.put(oid, payload(oid.raw())).unwrap();
                    written.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        for _ in 0..2 {
            let cluster = &cluster;
            let written = &written;
            let read_ok = &read_ok;
            s.spawn(move |_| {
                let mut k = 0u64;
                loop {
                    let done = written.load(Ordering::Relaxed);
                    if done >= 8_000 {
                        break;
                    }
                    if done > 0 {
                        let t = k % 4;
                        let i = k % (done / 4).max(1);
                        let oid = ObjectId(t * 100_000 + i);
                        if cluster.get(oid).is_ok() {
                            read_ok.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    k += 1;
                }
            });
        }
        // The resize controller: shrink and grow while I/O is running.
        let cluster = &cluster;
        s.spawn(move |_| {
            for &target in &[8usize, 5, 3, 6, 10, 7, 10] {
                std::thread::sleep(Duration::from_millis(40));
                let v = cluster.resize(target);
                println!(
                    "resized to {target} active servers (version {}), dirty entries: {}",
                    v.raw(),
                    cluster.dirty_len()
                );
            }
        });
    })
    .unwrap();

    // Make sure we finish at full power, then drain re-integration.
    cluster.resize(10);
    let mut spins = 0;
    while cluster.dirty_len() > 0 && spins < 10_000 {
        std::thread::sleep(Duration::from_millis(1));
        spins += 1;
    }
    cluster.stop_background_worker();
    worker.join().unwrap();

    println!(
        "\nwrote {} objects, {} successful concurrent reads, {} bytes re-integrated",
        written.load(Ordering::Relaxed),
        read_ok.load(Ordering::Relaxed),
        cluster.migrated_bytes()
    );
    println!("dirty table length at exit: {}", cluster.dirty_len());

    // Verify integrity of every object.
    let mut fully_placed = 0u64;
    for t in 0..4u64 {
        for i in 0..2_000u64 {
            let oid = ObjectId(t * 100_000 + i);
            assert_eq!(cluster.get(oid).unwrap(), payload(oid.raw()));
            if cluster.is_fully_placed(oid) {
                fully_placed += 1;
            }
        }
    }
    println!("all 8000 objects intact; {fully_placed} at their full-power placement");
    let per_node: Vec<usize> = cluster.nodes().iter().map(|n| n.object_count()).collect();
    println!("replicas per server (rank order): {per_node:?}");
}
