//! Quickstart: the elastic consistent hashing API in five minutes.
//!
//! Builds the paper's running example — a 10-server cluster with the
//! equal-work layout, 2 primaries and 2-way replication — then walks
//! through placement, power-down, offloaded writes, and selective
//! re-integration.
//!
//! Run with: `cargo run -p ech-apps --example quickstart`

use ech_core::prelude::*;

fn main() {
    // 1. The equal-work layout (§III-C): p = ceil(10/e²) = 2 primaries,
    //    weight B/p each; secondary of rank i gets B/i.
    let layout = Layout::equal_work(10, 10_000);
    println!("cluster: 10 servers, {} primaries", layout.primary_count());
    println!("weights: {:?}", layout.weights());

    // 2. Primary placement (Algorithm 1): exactly one replica of every
    //    object lands on a primary server.
    let mut view = ClusterView::new(layout, Strategy::Primary, 2);
    for oid in [ObjectId(10010), ObjectId(20400), ObjectId(103)] {
        let p = view.place_current(oid).unwrap();
        println!(
            "{oid} -> {p}  (replicas on primaries: {})",
            p.primary_replicas(view.layout()).count()
        );
    }

    // 3. Power down 4 servers. No cleanup is needed: primaries still hold
    //    a full data copy. Writes now offload and are tracked dirty.
    view.resize(6);
    println!(
        "\nresized to 6 active servers (version {})",
        view.current_version()
    );
    let mut dirty = InMemoryDirtyTable::new();
    let mut headers = HeaderMap::new();
    for k in 1000..1010u64 {
        let oid = ObjectId(k);
        let p = view.place_current(oid).unwrap();
        let ver = view.current_version();
        headers.record_write(oid, ver, view.write_is_dirty());
        if view.write_is_dirty() {
            dirty.push_back(DirtyEntry::new(oid, ver));
        }
        println!("wrote {oid} -> {p} (dirty)");
    }

    // 4. Power back up and selectively re-integrate: only the offloaded
    //    replicas move, not the whole keyspace.
    view.resize(10);
    println!(
        "\nresized to 10 (version {}); re-integrating…",
        view.current_version()
    );
    let mut engine = Reintegrator::new();
    let tasks = engine.drain(&view, &mut dirty, &headers);
    for t in &tasks {
        for m in &t.moves {
            println!("  migrate {} : {} -> {}", t.oid, m.from, m.to);
        }
    }
    println!(
        "{} of 10 dirty objects needed migration; dirty table now has {} entries",
        tasks.len(),
        dirty.len()
    );
    assert!(dirty.is_empty());
}
