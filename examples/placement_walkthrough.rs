//! Walkthrough of Figures 1 and 4: how consistent hashing places data,
//! and how the primary-server placement changes it.
//!
//! Run with: `cargo run -p ech-apps --example placement_walkthrough`

use ech_core::prelude::*;

fn main() {
    figure1_minimal_disruption();
    figure4_primary_placement();
}

/// Figure 1: adding a server moves only the keys on its new arcs.
fn figure1_minimal_disruption() {
    println!("=== Figure 1: consistent hashing, minimal disruption ===");
    let before = Layout::uniform(2, 600).build_ring();
    let after = Layout::uniform(3, 900).build_ring();
    let m2 = MembershipTable::full_power(2);
    let m3 = MembershipTable::full_power(3);

    let keys = 10_000u64;
    let mut moved = 0;
    for k in 0..keys {
        let a = place_original(&before, &m2, ObjectId(k), 2).unwrap();
        let b = place_original(&after, &m3, ObjectId(k), 2).unwrap();
        moved += b.servers().iter().filter(|s| !a.contains(**s)).count();
    }
    println!(
        "adding server 3 to a 2-server ring moved {moved} of {} replicas ({:.1}%)\n",
        2 * keys,
        100.0 * moved as f64 / (2 * keys) as f64
    );
}

/// Figure 4: 10 servers, 2 primaries (1, 2), servers 9 and 10 inactive.
/// Every object gets exactly one replica on a primary; inactive servers
/// are skipped (write offloading).
fn figure4_primary_placement() {
    println!("=== Figure 4: primary server data placement ===");
    let layout = Layout::equal_work(10, 10_000);
    let ring = layout.build_ring();
    let membership = MembershipTable::active_prefix(10, 8); // 9, 10 off

    println!(
        "primaries: servers 1..={}; servers 9, 10 inactive",
        layout.primary_count()
    );
    for k in 1u64..=8 {
        let oid = ObjectId(k * 1111);
        let p = place_primary(&ring, &layout, &membership, oid, 2).unwrap();
        let roles: Vec<String> = p
            .servers()
            .iter()
            .map(|&s| {
                if layout.is_primary(s) {
                    format!("{s} (primary)")
                } else {
                    format!("{s} (secondary)")
                }
            })
            .collect();
        println!("D{k} ({oid}) -> [{}]", roles.join(", "));
        assert_eq!(p.primary_replicas(&layout).count(), 1);
        assert!(p.servers().iter().all(|&s| membership.is_active(s)));
    }

    println!("\nevery placement: exactly 1 primary replica, inactive servers skipped");
}
