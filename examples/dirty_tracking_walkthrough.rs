//! Walkthrough of Figure 6: membership versioning, dirty-data tracking
//! in the Redis-like store, and selective re-integration across versions
//! 9 → 10 → 11.
//!
//! Uses the real `ech-cluster` data path, so the dirty table you see is
//! the actual RPUSH/LINDEX/LPOP state in `ech-kvstore`.
//!
//! Run with: `cargo run -p ech-apps --example dirty_tracking_walkthrough`

use bytes::Bytes;
use ech_cluster::{Cluster, ClusterConfig};
use ech_core::ids::ObjectId;

fn main() {
    let cluster = Cluster::new(ClusterConfig::paper());

    // Burn through versions so the interesting ones land at 9/10/11 like
    // the figure (versions 2..=8: earlier resizes).
    for k in [9, 8, 7, 6, 9, 8, 7] {
        cluster.resize(k);
    }
    cluster.resize(5); // version 9: servers 1..5 active
    println!(
        "version {}: servers 1..5 active",
        cluster.current_version().raw()
    );

    // Figure 6's version-9 writes.
    for oid in [9u64, 103, 10010, 20400] {
        cluster
            .put(ObjectId(oid), Bytes::from(format!("data-{oid}")))
            .unwrap();
        let p = cluster.locate(ObjectId(oid)).unwrap();
        println!("  wrote oid {oid} -> {p} [dirty]");
    }
    println!("  dirty table length: {}", cluster.dirty_len());

    // Version 10: turn on 4 more servers; re-integration migrates dirty
    // objects toward the new layout but keeps the entries (not full
    // power yet).
    cluster.resize(9);
    println!(
        "\nversion {}: servers 1..9 active",
        cluster.current_version().raw()
    );
    let stats = cluster.reintegrate_all();
    println!(
        "  re-integration: {} tasks, {} moves, {} bytes",
        stats.tasks, stats.moves, stats.bytes
    );
    println!(
        "  dirty table length: {} (entries kept: not full power)",
        cluster.dirty_len()
    );

    // Version 11: full power; all dirty entries are re-integrated and
    // removed (LPOP).
    cluster.resize(10);
    println!(
        "\nversion {}: all 10 servers active",
        cluster.current_version().raw()
    );
    let stats = cluster.reintegrate_all();
    println!(
        "  re-integration: {} tasks, {} moves, {} bytes",
        stats.tasks, stats.moves, stats.bytes
    );
    println!("  dirty table length: {} (cleared)", cluster.dirty_len());

    // The data is intact and fully placed.
    for oid in [9u64, 103, 10010, 20400] {
        assert_eq!(
            cluster.get(ObjectId(oid)).unwrap(),
            Bytes::from(format!("data-{oid}"))
        );
        assert!(cluster.is_fully_placed(ObjectId(oid)));
    }
    println!("\nall objects intact and at their full-power homes");
}
