//! §III-D in practice: planning tiered disk capacities for the skewed
//! equal-work layout, and what happens when you don't.
//!
//! Run with: `cargo run -p ech-apps --example capacity_planning`

use bytes::Bytes;
use ech_cluster::{Cluster, ClusterConfig, ClusterError};
use ech_core::ids::ObjectId;
use ech_core::layout::{CapacityPlan, Layout};

const GB: u64 = 1 << 30;

fn main() {
    // 1. The plan: 100 servers, 200 TB of data, the paper's six tiers.
    let layout = Layout::equal_work(100, 100_000);
    let tiers = [
        2000 * GB,
        1500 * GB,
        1000 * GB,
        750 * GB,
        500 * GB,
        320 * GB,
    ];
    let plan = CapacityPlan::fit(&layout, &tiers, 60_000 * GB, 0.2);
    println!("capacity plan for 100 servers / 60 TB (20% headroom):");
    let mut start = 0usize;
    for tier in 0..plan.tier_sizes().len() {
        let count = (0..100)
            .filter(|&i| plan.tier(ech_core::ids::ServerId(i)) == tier)
            .count();
        if count == 0 {
            continue;
        }
        println!(
            "  ranks {:>3}..{:>3}  {:>5} GB x {count}",
            start + 1,
            start + count,
            plan.tier_sizes()[tier] / GB
        );
        start += count;
    }
    println!(
        "total provisioned: {} TB for 60 TB of replica data",
        plan.total_capacity() / GB / 1024
    );
    let worst = plan
        .utilization(&layout, 60_000 * GB)
        .into_iter()
        .fold(0.0f64, f64::max);
    println!("worst-case utilisation at plan load: {:.0}%", worst * 100.0);

    // 2. The failure mode: identical small disks on a live cluster.
    println!("\nnow the anti-pattern — identical disks under the skewed layout:");
    let objects = 2_000u64;
    let obj_bytes = 8 * 1024usize;
    let per_node = (objects * obj_bytes as u64 * 2) / 10 * 14 / 10; // 1.4x avg share
    let mut cfg = ClusterConfig::paper();
    cfg.capacity_plan = Some(CapacityPlan::uniform(10, per_node));
    let c = Cluster::new(cfg);
    let mut full_errors = 0u64;
    for i in 0..objects {
        match c.put(ObjectId(i), Bytes::from(vec![0u8; obj_bytes])) {
            Ok(_) => {}
            Err(ClusterError::Node(ech_cluster::NodeError::DiskFull { .. })) => full_errors += 1,
            Err(e) => panic!("unexpected: {e}"),
        }
    }
    println!(
        "  wrote {} of {objects} objects; {full_errors} writes hit DiskFull",
        objects - full_errors
    );
    for (i, n) in c.nodes().iter().enumerate().take(3) {
        println!(
            "  rank {}: {} / {} bytes used",
            i + 1,
            n.bytes_stored(),
            n.capacity()
        );
    }
    println!("  (rank 1 fills first — it owns the largest keyspace share)");
}
