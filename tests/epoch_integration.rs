//! Epoch-service integration: resize decisions flow through the
//! totally-ordered membership service before touching the data path,
//! the way Sheepdog routes membership through corosync. Contending
//! controllers coordinate with compare-and-swap; a watcher applies
//! committed epochs to the live cluster in order.

use bytes::Bytes;
use ech_cluster::{Cluster, ClusterConfig};
use ech_core::ids::ObjectId;
use ech_core::membership::MembershipTable;
use ech_epoch::{EpochService, ProposeError};
use std::sync::Arc;

#[test]
fn committed_epochs_drive_the_cluster_in_order() {
    let svc = Arc::new(EpochService::new(10));
    let cluster = Cluster::new(ClusterConfig::paper());
    let rx = svc.subscribe();

    for i in 0..200u64 {
        cluster
            .put(ObjectId(i), Bytes::from(format!("v{i}")))
            .unwrap();
    }

    // Two controllers race resize decisions through CAS.
    crossbeam::scope(|s| {
        for t in 0..2u64 {
            let svc = svc.clone();
            s.spawn(move |_| {
                let targets = if t == 0 {
                    [8usize, 5, 7]
                } else {
                    [6usize, 9, 4]
                };
                for k in targets {
                    loop {
                        let (cur, _) = svc.current();
                        match svc.propose_cas(cur, MembershipTable::active_prefix(10, k)) {
                            Ok(_) => break,
                            Err(ProposeError::Conflict { .. }) => continue,
                            Err(e) => panic!("unexpected: {e}"),
                        }
                    }
                }
            });
        }
    })
    .unwrap();

    // The watcher applies every committed epoch to the data path, in
    // order. (In a deployment this runs continuously on every node.)
    let mut applied = 0;
    for event in rx.try_iter() {
        cluster.resize(event.table.active_count());
        applied += 1;
        // Data remains available at every committed epoch.
        for i in (0..200u64).step_by(20) {
            assert!(cluster.get(ObjectId(i)).is_ok(), "object {i} lost");
        }
    }
    assert_eq!(applied, 6, "all six commits observed exactly once");
    // Cluster version: 1 (initial) + 6 applied epochs.
    assert_eq!(cluster.current_version().raw(), 7);

    // Finish the elastic cycle.
    let (cur, _) = svc.current();
    svc.propose_cas(cur, MembershipTable::full_power(10))
        .unwrap();
    let event = rx.try_iter().next().expect("full-power commit");
    cluster.resize(event.table.active_count());
    cluster.reintegrate_all();
    assert_eq!(cluster.dirty_len(), 0);
    for i in 0..200u64 {
        assert_eq!(
            cluster.get(ObjectId(i)).unwrap(),
            Bytes::from(format!("v{i}"))
        );
    }
}

#[test]
fn fencing_rejects_stale_epoch_holders() {
    let svc = EpochService::new(10);
    let (old, _) = svc.current();
    svc.propose(MembershipTable::active_prefix(10, 6)).unwrap();
    // A straggler still holding the old epoch must be fenced.
    assert!(!svc.is_current(old));
    let (fresh, table) = svc.current();
    assert!(svc.is_current(fresh));
    assert_eq!(table.active_count(), 6);
    // Its stale CAS proposal is rejected outright.
    let err = svc
        .propose_cas(old, MembershipTable::full_power(10))
        .unwrap_err();
    assert!(matches!(err, ProposeError::Conflict { .. }));
}
