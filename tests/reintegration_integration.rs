//! End-to-end selective re-integration over a long, messy resize history:
//! the dirty table, membership versioning and Algorithm 2 must converge
//! the replica state to the final placement no matter the path taken.

use ech_core::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

/// A miniature replica-state machine: applies placements on write and
/// migration moves on re-integration, then checks convergence.
struct ReplicaState {
    locations: BTreeMap<ObjectId, BTreeSet<ServerId>>,
}

impl ReplicaState {
    fn new() -> Self {
        ReplicaState {
            locations: BTreeMap::new(),
        }
    }

    fn write(&mut self, oid: ObjectId, placement: &Placement) {
        self.locations
            .insert(oid, placement.servers().iter().copied().collect());
    }

    fn apply(&mut self, task: &MigrationTask) {
        let locs = self
            .locations
            .get_mut(&task.oid)
            .expect("migrating an object that was written");
        for m in &task.moves {
            assert!(
                locs.remove(&m.from),
                "{}: move source {} not held (have {:?})",
                task.oid,
                m.from,
                locs
            );
            assert!(
                locs.insert(m.to),
                "{}: target {} already held",
                task.oid,
                m.to
            );
        }
    }
}

#[test]
fn chaotic_resize_history_converges_at_full_power() {
    let mut view = ClusterView::new(Layout::equal_work(12, 12_000), Strategy::Primary, 2);
    let mut dirty = InMemoryDirtyTable::new();
    let mut headers = HeaderMap::new();
    let mut state = ReplicaState::new();
    let mut engine = Reintegrator::new();
    let mut next_oid = 0u64;

    // A messy schedule: down, up a bit, down harder, partial ups, full.
    let schedule = [8usize, 10, 5, 7, 3, 6, 9, 4, 12];
    for &active in &schedule {
        view.resize(active);
        // Write a batch at this version.
        let ver = view.current_version();
        for _ in 0..40 {
            let oid = ObjectId(next_oid);
            next_oid += 1;
            let p = view.place_current(oid).unwrap();
            state.write(oid, &p);
            headers.record_write(oid, ver, view.write_is_dirty());
            if view.write_is_dirty() {
                dirty.push_back(DirtyEntry::new(oid, ver));
            }
        }
        // Run re-integration opportunistically at every version. The
        // executor advances each object's header to the target version
        // (Figure 6) so the next pass plans from the true location.
        while let Ok(task) = engine.next_task(&view, &mut dirty, &headers) {
            state.apply(&task);
            if view.current_membership().is_full_power() {
                headers.mark_clean(task.oid, task.target_version);
            } else {
                headers.record_write(task.oid, task.target_version, true);
            }
        }
    }

    // Final version is full power: the dirty table must be empty...
    assert!(view.current_membership().is_full_power());
    assert!(dirty.is_empty(), "{} dirty entries remain", dirty.len());

    // ...and every object must sit exactly at its final full-power
    // placement: the header-version tracking guarantees the last drain
    // sourced each move from the object's true location.
    let final_ver = view.current_version();
    for (oid, locs) in &state.locations {
        let final_placement: BTreeSet<ServerId> = view
            .place_at(*oid, final_ver)
            .unwrap()
            .servers()
            .iter()
            .copied()
            .collect();
        assert_eq!(locs, &final_placement, "{oid} not at final placement");
    }
}

#[test]
fn reintegration_is_selective_not_full() {
    // Compare bytes the selective engine moves against what a full
    // placement-diff migration would move: selective must be bounded by
    // the dirty set, full scans everything.
    let mut view = ClusterView::new(Layout::equal_work(10, 10_000), Strategy::Primary, 2);
    let mut dirty = InMemoryDirtyTable::new();

    // 5000 clean objects at full power.
    let clean: Vec<ObjectId> = (0..5_000).map(ObjectId).collect();
    // Scale down; write only 200 dirty objects.
    view.resize(6);
    let wver = view.current_version();
    let dirty_oids: Vec<ObjectId> = (5_000..5_200).map(ObjectId).collect();
    for &oid in &dirty_oids {
        dirty.push_back(DirtyEntry::new(oid, wver));
    }
    view.resize(10);

    let mut engine = Reintegrator::new();
    let tasks = engine.drain(&view, &mut dirty, &NoHeaders);
    let selective_moves: usize = tasks.iter().map(|t| t.moves.len()).sum();

    // Full migration would also touch clean objects whose placement
    // includes the returning servers.
    let full_touched = clean
        .iter()
        .filter(|&&oid| {
            view.place_at(oid, VersionId(3))
                .unwrap()
                .servers()
                .iter()
                .any(|s| s.index() >= 6)
        })
        .count();

    assert!(
        selective_moves <= 200,
        "selective moved {selective_moves} replicas for 200 dirty objects"
    );
    assert!(
        full_touched > 500,
        "full migration would touch {full_touched} clean objects"
    );
}

#[test]
fn rate_limited_drain_takes_proportionally_longer() {
    // Algorithm 2 under a token bucket: halving the rate doubles the
    // simulated drain time.
    let object_size = 4.0 * 1024.0 * 1024.0;
    let drain_time = |rate: f64| -> f64 {
        let mut view = ClusterView::new(Layout::equal_work(10, 10_000), Strategy::Primary, 2);
        let mut dirty = InMemoryDirtyTable::new();
        view.resize(5);
        let ver = view.current_version();
        for k in 0..400u64 {
            dirty.push_back(DirtyEntry::new(ObjectId(k), ver));
        }
        view.resize(10);
        let mut engine = Reintegrator::new();
        // Burst of one second of rate so the per-tick refill is never
        // clipped by the bucket capacity.
        let mut bucket = TokenBucket::new(rate, rate);
        let mut pending: Option<(f64, MigrationTask)> = None;
        let mut t = 0.0;
        let dt = 0.1;
        loop {
            bucket.refill(dt);
            loop {
                if pending.is_none() {
                    match engine.next_task(&view, &mut dirty, &NoHeaders) {
                        Ok(task) => {
                            let bytes = task.moves.len() as f64 * object_size;
                            pending = Some((bytes, task));
                        }
                        Err(_) => return t,
                    }
                }
                let (left, _) = pending.as_mut().unwrap();
                let granted = bucket.consume_up_to(*left);
                *left -= granted;
                if *left > 1e-6 {
                    break; // bucket empty this tick
                }
                pending = None;
            }
            t += dt;
            assert!(t < 1e5, "drain never finished");
        }
    };

    let fast = drain_time(80.0 * 1e6);
    let slow = drain_time(40.0 * 1e6);
    let ratio = slow / fast;
    assert!(
        (1.6..2.6).contains(&ratio),
        "halving the rate should ~double drain time: {fast:.1}s vs {slow:.1}s"
    );
}
