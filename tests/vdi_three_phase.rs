//! End-to-end §V-A in miniature on the *live* cluster: a scaled-down
//! 3-phase workload driven through the virtual-disk interface, with the
//! cluster powering 4 of 10 servers down for the middle phase and
//! selectively re-integrating afterwards. Every byte is verified.

use ech_cluster::{Cluster, ClusterConfig, VirtualDisk};

const KB: u64 = 1024;
const STRIPE: u64 = 64 * KB;

/// Deterministic pattern for a given offset so verification needs no
/// shadow copy.
fn pattern(offset: u64, len: usize) -> Vec<u8> {
    (0..len as u64)
        .map(|i| (((offset + i) * 2_654_435_761) >> 16) as u8)
        .collect()
}

#[test]
fn live_three_phase_workload_over_a_virtual_disk() {
    let cluster = Cluster::new(ClusterConfig::paper());
    let disk = VirtualDisk::create(cluster.clone(), 42, 64 * 1024 * KB, STRIPE);
    let worker = cluster.start_background_worker(std::time::Duration::from_millis(1));

    // Phase 1: sequential writes at full power — 7 "files" of 512 KB.
    let file_len = 512 * KB;
    for f in 0..7u64 {
        let base = f * file_len;
        let data = pattern(base, file_len as usize);
        disk.write_at(base, &data).unwrap();
    }
    assert_eq!(cluster.dirty_len(), 0, "full-power writes are clean");

    // Valley: 4 servers power down; mixed light I/O (reads of phase-1
    // data, sparse writes).
    cluster.resize(6);
    for k in 0..64u64 {
        let off = (k * 37) % (7 * file_len - 4 * KB);
        let got = disk.read_at(off, 4 * KB as usize).unwrap();
        assert_eq!(got, pattern(off, 4 * KB as usize), "valley read at {off}");
    }
    let valley_base = 8 * file_len;
    for k in 0..32u64 {
        let off = valley_base + k * STRIPE;
        disk.write_at(off, &pattern(off, 16 * KB as usize)).unwrap();
    }
    assert!(cluster.dirty_len() > 0, "valley writes are offloaded+dirty");

    // Phase 3: back to full power; 20% writes, 80% reads, while the
    // background worker re-integrates.
    cluster.resize(10);
    for k in 0..100u64 {
        if k % 5 == 0 {
            let off = valley_base + 64 * STRIPE + k * 8 * KB;
            disk.write_at(off, &pattern(off, 8 * KB as usize)).unwrap();
        } else {
            let off = (k * 53) % (7 * file_len - 8 * KB);
            let got = disk.read_at(off, 8 * KB as usize).unwrap();
            assert_eq!(got, pattern(off, 8 * KB as usize), "phase-3 read at {off}");
        }
    }

    // Drain re-integration, stop the worker, verify everything.
    let mut spins = 0;
    while cluster.dirty_len() > 0 && spins < 10_000 {
        std::thread::sleep(std::time::Duration::from_millis(1));
        spins += 1;
    }
    cluster.stop_background_worker();
    worker.join().unwrap();
    assert_eq!(cluster.dirty_len(), 0);

    // Full verification of all three write generations.
    for f in 0..7u64 {
        let base = f * file_len;
        assert_eq!(
            disk.read_at(base, file_len as usize).unwrap(),
            pattern(base, file_len as usize),
            "phase-1 file {f}"
        );
    }
    for k in 0..32u64 {
        let off = valley_base + k * STRIPE;
        assert_eq!(
            disk.read_at(off, 16 * KB as usize).unwrap(),
            pattern(off, 16 * KB as usize),
            "valley write {k}"
        );
    }
    for k in (0..100u64).step_by(5) {
        let off = valley_base + 64 * STRIPE + k * 8 * KB;
        assert_eq!(
            disk.read_at(off, 8 * KB as usize).unwrap(),
            pattern(off, 8 * KB as usize),
            "phase-3 write {k}"
        );
    }
}
