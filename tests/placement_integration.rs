//! Cross-crate placement integration: layout + ring + placement +
//! membership all agree on the paper's invariants at realistic scale.

use ech_core::prelude::*;
use ech_core::stats;

#[test]
fn equal_work_layout_produces_rabbit_shaped_distribution() {
    // Figure 5's version-1 curve: with all 10 servers on, per-rank
    // replica counts must decrease with rank for secondaries and the two
    // primaries must hold roughly B/p each.
    let view = ClusterView::new(Layout::equal_work(10, 40_000), Strategy::Primary, 2);
    let oids: Vec<ObjectId> = (0..50_000).map(ObjectId).collect();
    let d = stats::replica_distribution(&view, &oids, VersionId(1));
    assert_eq!(d.iter().sum::<u64>(), 100_000);

    // Primaries (ranks 1, 2) hold one full copy between them: 50k total.
    let on_primaries = d[0] + d[1];
    assert!(
        (on_primaries as f64 - 50_000.0).abs() < 1_500.0,
        "primaries hold {on_primaries}, expected ~50000"
    );
    // Primaries split their copy roughly evenly.
    let ratio = d[0] as f64 / d[1] as f64;
    assert!((0.9..1.1).contains(&ratio), "primary skew {ratio:.3}");

    // Secondary tail decays with rank (Equation 2): compare ranks 3 and
    // 10 with a generous margin.
    assert!(
        d[2] as f64 > 1.8 * d[9] as f64,
        "rank 3 ({}) should dwarf rank 10 ({})",
        d[2],
        d[9]
    );
}

#[test]
fn scaling_down_one_server_at_a_time_never_loses_availability() {
    // Walk the expansion chain down from 10 to p = 2 one server at a
    // time; at every step, every object must still resolve to r active
    // replicas — the "resizing granularity of one server" claim (§III-E).
    let mut view = ClusterView::new(Layout::equal_work(10, 10_000), Strategy::Primary, 2);
    let oids: Vec<ObjectId> = (0..2_000).map(ObjectId).collect();
    for active in (2..=9).rev() {
        view.resize(active);
        for &oid in &oids {
            let p = view.place_current(oid).unwrap();
            assert_eq!(p.len(), 2);
            for &s in p.servers() {
                assert!(
                    view.current_membership().is_active(s),
                    "active={active}: {oid} placed on inactive {s}"
                );
            }
        }
    }
}

#[test]
fn original_ch_disruption_is_proportional_to_departed_fraction() {
    // Removing the tail k servers from a uniform ring relocates roughly
    // the departed share of replicas, not the whole keyspace.
    let mut view = ClusterView::new(Layout::uniform(20, 20_000), Strategy::Original, 3);
    let oids: Vec<ObjectId> = (0..10_000).map(ObjectId).collect();
    view.resize(15); // 25% of servers leave
    let moved = stats::moved_replicas(&view, &oids, VersionId(1), VersionId(2));
    let frac = moved as f64 / (3.0 * 10_000.0);
    assert!(
        (0.15..0.45).contains(&frac),
        "expected roughly a quarter of replicas to move, got {:.1}%",
        frac * 100.0
    );
}

#[test]
fn primary_and_original_strategies_share_the_same_view_api() {
    for (layout, strategy) in [
        (Layout::equal_work(10, 10_000), Strategy::Primary),
        (Layout::uniform(10, 10_000), Strategy::Original),
    ] {
        let mut view = ClusterView::new(layout, strategy, 2);
        view.resize(6);
        view.resize(10);
        for k in 0..100u64 {
            let p = view.place_current(ObjectId(k)).unwrap();
            assert_eq!(p.len(), 2);
            // All three versions resolve.
            for v in 1..=3u64 {
                view.place_at(ObjectId(k), VersionId(v)).unwrap();
            }
        }
    }
}

#[test]
fn capacity_plan_prevents_overflow_at_scale() {
    // §III-D: provisioning tiered capacities proportional to the
    // equal-work weights keeps every server under 100% utilisation for
    // the planned data volume, at a 100-server scale.
    const GB: u64 = 1 << 30;
    let layout = Layout::equal_work(100, 100_000);
    let tiers = [
        2000 * GB,
        1500 * GB,
        1000 * GB,
        750 * GB,
        500 * GB,
        320 * GB,
    ];
    let plan = CapacityPlan::fit(&layout, &tiers, 20_000 * GB, 0.15);
    assert!(plan.is_rank_contiguous());
    let util = plan.utilization(&layout, 20_000 * GB);
    for (i, u) in util.iter().enumerate() {
        assert!(*u <= 1.0, "rank {} util {u:.2}", i + 1);
    }
    // The uniform plan with the smallest tier would overflow rank 1.
    let uniform = CapacityPlan::uniform(100, 320 * GB);
    let u0 = uniform.utilization(&layout, 20_000 * GB)[0];
    assert!(
        u0 > 1.0,
        "uniform small-disk plan should overflow, got {u0:.2}"
    );
}
