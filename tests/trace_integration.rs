//! Trace-analysis integration: figure-level properties of the CC-a/CC-b
//! policy runs beyond the Table II ratios (those live in
//! crates/traces/tests/table2.rs).

use ech_traces::{analyze, simulate, synth, PolicyKind, PolicyParams};

#[test]
fn figure8_series_have_the_legend_shapes() {
    let trace = synth::cc_a();
    let params = PolicyParams::for_trace(&trace);
    let a = analyze(&trace, &params);

    let ideal = &a.result(PolicyKind::Ideal).servers;
    let orig = &a.result(PolicyKind::OriginalCh).servers;
    let sel = &a.result(PolicyKind::PrimarySelective).servers;

    // Original CH trails the ideal on downward slopes: on average it
    // runs more servers.
    let mean = |v: &Vec<u32>| v.iter().map(|&x| x as f64).sum::<f64>() / v.len() as f64;
    assert!(mean(orig) > mean(ideal));

    // Selective hugs the ideal except at the primary floor and while a
    // (rate-limited) migration backlog drains: never below the ideal, and
    // within a few servers of it for most above-floor bins.
    let p = params.primary_floor() as u32;
    assert!(
        (0..ideal.len()).all(|i| sel[i] >= ideal[i].min(sel[i])),
        "selective sank below the ideal"
    );
    let above_floor: Vec<usize> = (0..ideal.len()).filter(|&i| ideal[i] > p).collect();
    let close = above_floor
        .iter()
        .filter(|&&i| sel[i] <= ideal[i] + 4)
        .count();
    assert!(
        close as f64 > 0.6 * above_floor.len() as f64,
        "selective close to ideal at only {}/{} above-floor bins",
        close,
        above_floor.len()
    );

    // Selective never sinks below the primary floor.
    assert!(sel.iter().all(|&s| s >= p));
}

#[test]
fn original_ch_lags_on_sharp_size_downs() {
    // Find a sharp downward transition in the ideal series; original CH
    // must take strictly longer to reach the new level.
    let trace = synth::cc_a();
    let params = PolicyParams::for_trace(&trace);
    let ideal = simulate(&trace, &params, PolicyKind::Ideal).servers;
    let orig = simulate(&trace, &params, PolicyKind::OriginalCh).servers;

    let mut lag_bins = 0usize;
    let mut drops = 0usize;
    for i in 1..ideal.len() {
        if ideal[i] + 8 <= ideal[i - 1] {
            drops += 1;
            if orig[i] > ideal[i] + 2 {
                lag_bins += 1;
            }
        }
    }
    assert!(
        drops > 10,
        "trace should contain sharp drops, found {drops}"
    );
    assert!(
        lag_bins * 2 > drops,
        "original CH lagged on only {lag_bins}/{drops} sharp drops"
    );
}

#[test]
fn policies_are_deterministic() {
    let trace = synth::cc_b();
    let params = PolicyParams::for_trace(&trace);
    for kind in PolicyKind::all() {
        let a = simulate(&trace, &params, kind);
        let b = simulate(&trace, &params, kind);
        assert_eq!(a.servers, b.servers);
        assert_eq!(a.machine_hours, b.machine_hours);
    }
}

#[test]
fn table1_rows_match_the_paper() {
    let a = synth::cc_a();
    let b = synth::cc_b();
    assert_eq!(
        a.table1_row(),
        (
            "CC-a".to_owned(),
            "<100".to_owned(),
            "1 month".to_owned(),
            "69TB".to_owned()
        )
    );
    assert_eq!(
        b.table1_row(),
        (
            "CC-b".to_owned(),
            "180".to_owned(),
            "9 days".to_owned(),
            "473TB".to_owned()
        )
    );
}

#[test]
fn extra_io_ordering_selective_smallest() {
    for trace in [synth::cc_a(), synth::cc_b()] {
        let params = PolicyParams::for_trace(&trace);
        let a = analyze(&trace, &params);
        let sel = a.result(PolicyKind::PrimarySelective).extra_io_bytes;
        let full = a.result(PolicyKind::PrimaryFull).extra_io_bytes;
        let ideal = a.result(PolicyKind::Ideal).extra_io_bytes;
        assert_eq!(ideal, 0.0);
        assert!(
            sel < full,
            "{}: selective {sel:.2e} !< full {full:.2e}",
            a.trace_name
        );
    }
}
