//! Live-cluster integration: the full §IV data path (placement →
//! storage nodes → dirty table in the KV store → selective
//! re-integration) under realistic elastic scenarios.

use bytes::Bytes;
use ech_cluster::{Cluster, ClusterConfig};
use ech_core::ids::ObjectId;
use ech_core::placement::Strategy;
use std::sync::Arc;

fn payload(oid: u64) -> Bytes {
    // Deterministic, size-varied payloads so byte accounting is exercised.
    Bytes::from(vec![(oid % 251) as u8; 64 + (oid % 192) as usize])
}

fn write_range(c: &Arc<Cluster>, range: std::ops::Range<u64>) {
    for i in range {
        c.put(ObjectId(i), payload(i)).unwrap();
    }
}

fn assert_all_readable(c: &Arc<Cluster>, range: std::ops::Range<u64>) {
    for i in range {
        assert_eq!(c.get(ObjectId(i)).unwrap(), payload(i), "object {i}");
    }
}

#[test]
fn power_cycle_preserves_every_byte() {
    // Write at full power, cycle through aggressive resizes with writes
    // at every level, end at full power, re-integrate: every object must
    // be readable and fully placed, and the dirty table empty.
    let c = Cluster::new(ClusterConfig::paper());
    write_range(&c, 0..500);
    let mut next = 500u64;
    for &active in &[7usize, 4, 2, 5, 8, 3, 6, 10] {
        c.resize(active);
        write_range(&c, next..next + 200);
        assert_all_readable(&c, 0..next + 200);
        next += 200;
        // Opportunistic re-integration at every level, like the paper's
        // always-running component.
        c.reintegrate_all();
    }
    assert_eq!(c.dirty_len(), 0);
    assert_all_readable(&c, 0..next);
    for i in 0..next {
        assert!(c.is_fully_placed(ObjectId(i)), "object {i} misplaced");
    }
}

#[test]
fn equal_work_cluster_stores_more_on_high_ranks() {
    let c = Cluster::new(ClusterConfig::paper());
    write_range(&c, 0..5_000);
    let counts: Vec<usize> = c.nodes().iter().map(|n| n.object_count()).collect();
    // Primaries (ranks 1-2) carry a full copy: together half of all
    // replicas.
    let primary_total = counts[0] + counts[1];
    let all: usize = counts.iter().sum();
    assert_eq!(all, 10_000);
    assert!(
        (primary_total as f64 - 5_000.0).abs() < 300.0,
        "primaries hold {primary_total} of {all}"
    );
    // Tail decays: rank 3 > rank 10.
    assert!(counts[2] > counts[9]);
}

#[test]
fn minimal_power_cluster_still_serves_reads_and_writes() {
    let c = Cluster::new(ClusterConfig::paper());
    write_range(&c, 0..300);
    c.resize(2); // just the primaries
    assert_all_readable(&c, 0..300);
    // Writes still succeed (special case: primaries act as secondaries).
    write_range(&c, 300..350);
    assert_all_readable(&c, 300..350);
    assert!(c.dirty_len() >= 50);
}

#[test]
fn dirty_table_in_kvstore_matches_cluster_accounting() {
    let c = Cluster::new(ClusterConfig::paper());
    c.resize(6);
    write_range(&c, 0..120);
    // The dirty table lives in the shared kv store under the documented
    // key layout.
    assert_eq!(c.kv().llen("ech:dirty").unwrap(), 120);
    assert_eq!(c.dirty_len(), 120);
    c.resize(10);
    c.reintegrate_all();
    assert_eq!(c.kv().llen("ech:dirty").unwrap(), 0);
}

#[test]
fn original_strategy_moves_more_than_selective_on_size_up() {
    // The headline claim, on the live store: bytes moved by selective
    // re-integration are far fewer than what the original CH would
    // transfer ("over-migrates all the data").
    let elastic = Cluster::new(ClusterConfig::paper());
    write_range(&elastic, 0..2_000);
    elastic.resize(6);
    write_range(&elastic, 2_000..2_200);
    elastic.resize(10);
    elastic.reintegrate_all();
    let selective_bytes = elastic.migrated_bytes();

    // Original CH's assume-empty migration on the same history: every
    // replica whose placement lands on servers 7..10 gets copied.
    let mut cfg = ClusterConfig::paper();
    cfg.strategy = Strategy::Original;
    let orig = Cluster::new(cfg);
    write_range(&orig, 0..2_000);
    orig.resize(6);
    write_range(&orig, 2_000..2_200);
    orig.resize(10);
    let mut assume_empty_bytes = 0u64;
    for i in 0..2_200u64 {
        let p = orig.locate(ObjectId(i)).unwrap();
        for s in p.servers() {
            if s.index() >= 6 {
                assume_empty_bytes += payload(i).len() as u64;
            }
        }
    }
    assert!(
        selective_bytes * 4 < assume_empty_bytes,
        "selective moved {selective_bytes}, assume-empty would move {assume_empty_bytes}"
    );
}

#[test]
fn concurrent_clients_with_elastic_resizes_lose_nothing() {
    let c = Cluster::new(ClusterConfig::paper());
    let worker = c.start_background_worker(std::time::Duration::from_millis(1));
    crossbeam::scope(|s| {
        for t in 0..8u64 {
            let c = &c;
            s.spawn(move |_| {
                for i in 0..500u64 {
                    let oid = ObjectId(t * 10_000 + i);
                    c.put(oid, payload(oid.raw())).unwrap();
                    // Read-your-write.
                    assert_eq!(c.get(oid).unwrap(), payload(oid.raw()));
                }
            });
        }
        let c = &c;
        s.spawn(move |_| {
            for &k in &[8usize, 6, 4, 7, 9, 5, 10] {
                std::thread::sleep(std::time::Duration::from_millis(15));
                c.resize(k);
            }
        });
    })
    .unwrap();
    c.resize(10);
    let mut spins = 0;
    while c.dirty_len() > 0 && spins < 10_000 {
        std::thread::sleep(std::time::Duration::from_millis(1));
        spins += 1;
    }
    c.stop_background_worker();
    worker.join().unwrap();
    assert_eq!(c.dirty_len(), 0, "dirty table must drain at full power");
    for t in 0..8u64 {
        for i in 0..500u64 {
            let oid = ObjectId(t * 10_000 + i);
            assert_eq!(c.get(oid).unwrap(), payload(oid.raw()));
        }
    }
}
