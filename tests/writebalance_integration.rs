//! Dynamic-primary integration: switching `p` on a live view means a new
//! layout, a new ring and a migration bill — this test walks the whole
//! cycle and checks the costs match the analytic estimate.

use ech_core::prelude::*;
use ech_core::writebalance::{relayout_fraction, WriteBalancer};

/// Replica-level movement fraction between two explicit-p layouts at full
/// power, measured over `keys` objects with `r`-way replication.
fn measured_move_fraction(n: usize, base: u32, p_from: usize, p_to: usize, r: usize) -> f64 {
    let la = Layout::equal_work_with_primaries(n, base, p_from);
    let lb = Layout::equal_work_with_primaries(n, base, p_to);
    let ra = la.build_ring();
    let rb = lb.build_ring();
    let m = MembershipTable::full_power(n);
    let keys = 5_000u64;
    let mut moved = 0usize;
    for k in 0..keys {
        let a = place_primary(&ra, &la, &m, ObjectId(k), r).unwrap();
        let b = place_primary(&rb, &lb, &m, ObjectId(k), r).unwrap();
        moved += b.servers().iter().filter(|s| !a.contains(**s)).count();
    }
    moved as f64 / (keys as f64 * r as f64)
}

#[test]
fn growing_p_preserves_the_one_primary_invariant() {
    for p in 2..=5usize {
        let layout = Layout::equal_work_with_primaries(10, 20_000, p);
        let ring = layout.build_ring();
        let m = MembershipTable::full_power(10);
        for k in 0..500u64 {
            let placement = place_primary(&ring, &layout, &m, ObjectId(k), 2).unwrap();
            assert_eq!(
                placement.primary_replicas(&layout).count(),
                1,
                "p={p} oid={k}"
            );
        }
    }
}

#[test]
fn replica_move_fraction_grows_with_p_jump_size() {
    let small = measured_move_fraction(10, 20_000, 2, 3, 2);
    let large = measured_move_fraction(10, 20_000, 2, 5, 2);
    assert!(
        small > 0.0 && large > small,
        "small {small:.3} large {large:.3}"
    );
    // And the analytic single-copy estimate is at the right scale for the
    // replica-level measurement (primary-count changes also reshuffle
    // which replica is "the primary one", so measured > analytic).
    let analytic = relayout_fraction(10, 20_000, 2, 5);
    assert!(
        large < 4.0 * analytic + 0.1,
        "measured {large:.3} wildly exceeds analytic {analytic:.3}"
    );
}

#[test]
fn balancer_cycle_returns_to_the_paper_floor() {
    let mut balancer = WriteBalancer::new(10, 2, 30.0e6, 4);
    assert_eq!(balancer.current(), 2);
    // Burst: grow immediately.
    assert_eq!(balancer.observe(260.0e6), Some(5));
    // Quiet period: after the hysteresis window, back to p_min.
    let mut changed_back = None;
    for _ in 0..10 {
        if let Some(p) = balancer.observe(5.0e6) {
            changed_back = Some(p);
            break;
        }
    }
    assert_eq!(changed_back, Some(2));
    assert_eq!(balancer.current(), balancer.p_min());
}

#[test]
fn each_p_keeps_equal_work_tail_shape() {
    // Whatever p is, the secondary tail still decays as B/i.
    for p in 2..=4usize {
        let layout = Layout::equal_work_with_primaries(12, 24_000, p);
        let w = layout.weights();
        for i in (p + 1)..12 {
            assert!(w[i - 1] >= w[i], "p={p}: tail rose at rank {}", i + 1);
        }
        assert_eq!(w[p], 24_000 / (p as u32 + 1));
    }
}
