//! Simulator integration: the figure-level phenomena must reproduce with
//! the default paper-testbed configuration.

use ech_sim::experiments::{fig2_schedule, resize_agility, three_phase};
use ech_sim::{ClusterSim, ElasticityMode, SimConfig};
use ech_workload::three_phase::Workload;

#[test]
fn figure2_shape_original_lags_down_catches_up() {
    let r = resize_agility(ElasticityMode::OriginalCh, &fig2_schedule(), 330.0, 3500);
    // Down phase (t in [30, 150)): actual must exceed ideal somewhere by
    // several servers (the re-replication gate).
    let down_gap: f64 = r
        .times
        .iter()
        .zip(r.ideal.iter().zip(&r.actual))
        .filter(|(t, _)| (30.0..150.0).contains(*t))
        .map(|(_, (&i, &a))| a as f64 - i as f64)
        .fold(0.0, f64::max);
    assert!(down_gap >= 2.0, "down-phase lag {down_gap}");
    // Up phase: by t=310 the system caught up to 10.
    let last = *r.actual.last().unwrap();
    assert_eq!(last, 10, "should catch up on size-up");
}

#[test]
fn figure2_elastic_design_tracks_ideal() {
    let e = resize_agility(
        ElasticityMode::PrimarySelective,
        &fig2_schedule(),
        330.0,
        3500,
    );
    // Mean gap dominated only by shutdown/boot latencies.
    assert!(e.mean_gap() < 1.5, "elastic mean gap {}", e.mean_gap());
    assert!(e.excess_machine_seconds(0.5) < 1_000.0);
}

#[test]
fn figure3_resizing_hurts_original_ch_after_the_valley() {
    let none = three_phase(ElasticityMode::NoResizing, 120.0, 1500.0);
    let orig = three_phase(ElasticityMode::OriginalCh, 120.0, 1500.0);
    // Same peak for both (the paper: "little difference in the peak IO
    // throughput").
    let peak = |r: &ech_sim::experiments::ThreePhaseRun| {
        r.samples
            .iter()
            .map(|s| s.client_throughput)
            .fold(0.0, f64::max)
    };
    let p_none = peak(&none);
    let p_orig = peak(&orig);
    assert!(
        (p_none - p_orig).abs() < 0.1 * p_none,
        "peaks differ: {p_none} vs {p_orig}"
    );
    // But original CH recovers throughput later than no-resizing
    // (which never dips).
    let d_orig = orig.recovery_delay(0.8).expect("phase 2 ended");
    let d_none = none.recovery_delay(0.8).unwrap_or(0.0);
    assert!(
        d_orig > d_none + 20.0,
        "original CH delay {d_orig}s vs no-resizing {d_none}s"
    );
    // The dip is deep: once the returning servers boot (30 s), original
    // CH's assume-empty migration starves the client well below its own
    // peak, while no-resizing holds its peak through phase 3.
    let t0 = orig.phase_ends[1];
    let dip = orig.mean_throughput(t0 + 35.0, t0 + 65.0);
    assert!(
        dip < 0.7 * p_orig,
        "migration window throughput {dip:.3e} vs peak {p_orig:.3e}"
    );
    let t0n = none.phase_ends[1];
    let steady = none.mean_throughput(t0n + 5.0, t0n + 35.0);
    assert!(
        steady > 0.9 * p_none,
        "no-resizing phase 3 should hold its peak: {steady:.3e} vs {p_none:.3e}"
    );
    // And saves machine time for it.
    assert!(orig.machine_seconds < none.machine_seconds);
}

#[test]
fn figure7_selective_beats_original_on_recovery_delay() {
    let orig = three_phase(ElasticityMode::OriginalCh, 120.0, 1500.0);
    let sel = three_phase(ElasticityMode::PrimarySelective, 120.0, 1500.0);
    let d_orig = orig.recovery_delay(0.8).unwrap();
    let d_sel = sel.recovery_delay(0.8).unwrap();
    assert!(
        d_sel * 2.0 < d_orig,
        "selective delay {d_sel}s should be well under half of original {d_orig}s"
    );
    // Selective also moves far fewer bytes.
    assert!(
        sel.migrated_bytes * 2.0 < orig.migrated_bytes,
        "selective moved {:.1e}, original {:.1e}",
        sel.migrated_bytes,
        orig.migrated_bytes
    );
}

#[test]
fn no_resizing_throughput_is_flat_at_phase_level() {
    let r = three_phase(ElasticityMode::NoResizing, 60.0, 1200.0);
    // During phase 2 throughput equals the offered 20 MB/s.
    let p2 = r.mean_throughput(r.phase_ends[0] + 5.0, r.phase_ends[1] - 5.0);
    assert!(
        (p2 - 20.0e6).abs() < 2.0e6,
        "phase-2 throughput {p2} != 20 MB/s"
    );
}

#[test]
fn machine_time_ordering_matches_power_savings() {
    // Resizing saves machine-seconds; selective keeps performance while
    // saving as much as the other resizing modes.
    let none = three_phase(ElasticityMode::NoResizing, 120.0, 1500.0);
    let sel = three_phase(ElasticityMode::PrimarySelective, 120.0, 1500.0);
    assert!(
        sel.machine_seconds < 0.9 * none.machine_seconds,
        "selective {} vs no-resizing {}",
        sel.machine_seconds,
        none.machine_seconds
    );
}

#[test]
fn simulator_conserves_workload_bytes() {
    // The client must end up having transferred exactly the workload's
    // bytes (no creation or loss in the fluid accounting).
    let mut sim = ClusterSim::new(SimConfig::paper_testbed(ElasticityMode::NoResizing));
    let w = Workload::three_phase_figure(60.0);
    sim.start_workload(&w);
    let mut transferred = 0.0;
    let mut guard = 0u32;
    loop {
        let ev = sim.step();
        transferred += sim.sample().client_throughput * sim.config().dt;
        if ev.workload_done {
            break;
        }
        guard += 1;
        assert!(guard < 1_000_000, "workload never finished");
    }
    let expect = w.total_bytes() as f64;
    assert!(
        (transferred - expect).abs() / expect < 0.01,
        "transferred {transferred:.3e} vs workload {expect:.3e}"
    );
}
