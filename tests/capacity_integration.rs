//! §III-D end to end on the live cluster: the equal-work layout
//! over-fills uniformly provisioned small disks, while the tiered
//! capacity plan fitted to the weights absorbs the same data without a
//! single DiskFull.

use bytes::Bytes;
use ech_cluster::{Cluster, ClusterConfig, ClusterError};
use ech_core::ids::ObjectId;
use ech_core::layout::{CapacityPlan, Layout};
use ech_core::placement::Strategy;

const OBJ: usize = 4 * 1024; // 4 KB objects keep the test light
const OBJECTS: u64 = 3_000;

fn payload() -> Bytes {
    Bytes::from(vec![0x5Au8; OBJ])
}

fn write_all(c: &std::sync::Arc<Cluster>) -> (u64, u64) {
    let mut ok = 0u64;
    let mut full = 0u64;
    for i in 0..OBJECTS {
        match c.put(ObjectId(i), payload()) {
            Ok(_) => ok += 1,
            Err(ClusterError::Node(ech_cluster::NodeError::DiskFull { .. })) => full += 1,
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    (ok, full)
}

/// Total bytes the test writes (per replica set).
fn total_bytes() -> u64 {
    OBJECTS * OBJ as u64 * 2 // 2-way replication
}

#[test]
fn uniform_small_disks_overflow_under_equal_work() {
    // Give every node the same capacity, sized so the *average* fits
    // easily but rank 1 (which carries ~25% of all replicas) does not.
    let per_node = total_bytes() / 10 * 15 / 10; // 1.5x the average share
    let mut cfg = ClusterConfig::paper();
    cfg.capacity_plan = Some(CapacityPlan::uniform(10, per_node));
    let c = Cluster::new(cfg);
    let (_, full) = write_all(&c);
    assert!(
        full > 0,
        "uniform provisioning should hit DiskFull on the high ranks"
    );
    // The overflowing node is a primary (rank 1 or 2) — the heavy end.
    let fullest = c
        .nodes()
        .iter()
        .max_by_key(|n| n.bytes_stored())
        .expect("nodes exist");
    assert!(
        fullest.id().index() < 2,
        "heaviest node should be a primary"
    );
}

#[test]
fn fitted_tier_plan_absorbs_everything() {
    // Tiers fitted to the layout's expected fractions with 30% headroom.
    let layout = Layout::equal_work(10, 10_000);
    let avg = total_bytes() / 10;
    let tiers = [avg * 8, avg * 4, avg * 2, avg];
    let plan = CapacityPlan::fit(&layout, &tiers, total_bytes(), 0.3);
    assert!(plan.is_rank_contiguous());
    let mut cfg = ClusterConfig::paper();
    cfg.capacity_plan = Some(plan);
    let c = Cluster::new(cfg);
    let (ok, full) = write_all(&c);
    assert_eq!(full, 0, "fitted plan must not overflow");
    assert_eq!(ok, OBJECTS);
    // And the data is all there.
    for i in 0..OBJECTS {
        assert_eq!(c.get(ObjectId(i)).unwrap(), payload());
    }
}

#[test]
fn original_ch_is_happy_with_uniform_disks() {
    // The flip side: the uniform layout + original CH spreads evenly, so
    // identical disks sized a little above the average share suffice.
    let per_node = total_bytes() / 10 * 15 / 10;
    let mut cfg = ClusterConfig::paper();
    cfg.strategy = Strategy::Original;
    cfg.capacity_plan = Some(CapacityPlan::uniform(10, per_node));
    let c = Cluster::new(cfg);
    let (ok, full) = write_all(&c);
    assert_eq!(full, 0, "uniform layout fits uniform disks");
    assert_eq!(ok, OBJECTS);
}
