#!/usr/bin/env python3
"""Plot the paper's figures from the harness binaries' output.

Usage:
    cargo run -p ech-bench --release --bin fig7_selective_reintegration > fig7.txt
    python3 tools/plot_figures.py fig7 fig7.txt fig7.png

    cargo run -p ech-cli --release -- three-phase --mode selective > curve.csv
    python3 tools/plot_figures.py csv curve.csv curve.png

Requires matplotlib. The harnesses themselves have no plotting
dependencies; this script is an optional convenience for turning their
aligned-column / CSV output into PNGs shaped like the paper's figures.
"""

import sys


def parse_aligned_table(lines):
    """Parse the harness' aligned-column output: first data row is the
    header; rows end at the first blank line."""
    rows = []
    header = None
    for line in lines:
        stripped = line.strip()
        if not stripped:
            if header:
                break
            continue
        if stripped.startswith(("=", "#")) or ":" in stripped and header is None:
            continue
        cells = stripped.split()
        if header is None:
            header = cells
            continue
        try:
            rows.append([float(c) for c in cells])
        except ValueError:
            break
    return header, rows


def parse_csv(lines):
    header = None
    rows = []
    for line in lines:
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        cells = line.split(",")
        if header is None:
            header = cells
            continue
        try:
            rows.append([float(c) for c in cells])
        except ValueError:
            continue
    return header, rows


def main():
    if len(sys.argv) != 4:
        print(__doc__)
        sys.exit(2)
    kind, src, dst = sys.argv[1:]
    with open(src) as f:
        lines = f.readlines()

    if kind == "csv":
        header, rows = parse_csv(lines)
    else:
        header, rows = parse_aligned_table(lines)
    if not rows:
        print("no data rows found in", src)
        sys.exit(1)

    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    xs = [r[0] for r in rows]
    fig, ax = plt.subplots(figsize=(7, 4))
    for col in range(1, len(header)):
        ys = [r[col] if col < len(r) else float("nan") for r in rows]
        ax.plot(xs, ys, label=header[col])
    ax.set_xlabel(header[0])
    ax.legend()
    ax.grid(True, alpha=0.3)
    fig.tight_layout()
    fig.savefig(dst, dpi=150)
    print("wrote", dst)


if __name__ == "__main__":
    main()
