//! Offline shim for `proptest`.
//!
//! A compact property-testing engine exposing the API surface this
//! workspace uses: the `proptest!` test macro (with
//! `#![proptest_config(...)]`), `prop_oneof!` (weighted and unweighted),
//! `prop_assert!`/`prop_assert_eq!`, `Just`, range and regex-literal
//! strategies, tuples of strategies, `prop_map`/`prop_flat_map`, and
//! `proptest::collection::vec`.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * cases are generated from a fixed seed (fully deterministic runs,
//!   no `proptest-regressions` persistence);
//! * failing cases are reported with their `Debug` value but are NOT
//!   shrunk;
//! * string strategies support the small regex subset that appears in
//!   this repo's tests (char classes, literals, `{m,n}`/`{m}`/`*`/`+`/`?`).

pub mod test_runner {
    /// Deterministic xoshiro256++ RNG used to drive all strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl TestRng {
        pub fn new(seed: u64) -> Self {
            let mut sm = seed;
            TestRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// Uniform in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0);
            self.next_u64() % bound
        }

        /// Uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
        /// Base seed for the deterministic per-case RNG streams.
        pub seed: u64,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 64,
                seed: 0xEC0_5EED_u64 ^ 0x5DEECE66D,
            }
        }
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases,
                ..Default::default()
            }
        }
    }

    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        Fail(String),
        Reject(String),
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
                TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            }
        }
    }

    /// Drive `test` over `config.cases` generated inputs. Failures are
    /// reported with the generated value (no shrinking).
    pub fn run<S>(
        config: &ProptestConfig,
        strategy: &S,
        test: impl Fn(S::Value) -> Result<(), TestCaseError>,
    ) where
        S: crate::strategy::Strategy,
        S::Value: std::fmt::Debug,
    {
        for case in 0..config.cases {
            let mut sm = config.seed ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let mut rng = TestRng::new(splitmix64(&mut sm));
            let value = strategy.generate(&mut rng);
            let repr = format!("{value:?}");
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| test(value)));
            match outcome {
                Ok(Ok(())) => {}
                Ok(Err(TestCaseError::Reject(_))) => {}
                Ok(Err(TestCaseError::Fail(msg))) => {
                    panic!("proptest case {case} failed: {msg}\ninput: {repr}");
                }
                Err(payload) => {
                    eprintln!("proptest case {case} panicked\ninput: {repr}");
                    std::panic::resume_unwind(payload);
                }
            }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of values of type `Self::Value`.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }

        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { source: self, f }
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    #[derive(Clone)]
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    #[derive(Clone)]
    pub struct FlatMap<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.source.generate(rng)).generate(rng)
        }
    }

    /// Type-erased strategy arm used by `prop_oneof!`.
    pub trait UnionArm<T> {
        fn generate_arm(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> UnionArm<S::Value> for S {
        fn generate_arm(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    pub fn union_arm<S: Strategy + 'static>(s: S) -> Box<dyn UnionArm<S::Value>> {
        Box::new(s)
    }

    /// Weighted choice over heterogeneous strategies with one value type.
    pub struct Union<T> {
        arms: Vec<(u32, Box<dyn UnionArm<T>>)>,
        total: u64,
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<(u32, Box<dyn UnionArm<T>>)>) -> Self {
            let total = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof! needs at least one positive weight");
            Union { arms, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total);
            for (w, arm) in &self.arms {
                if pick < *w as u64 {
                    return arm.generate_arm(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weight bookkeeping is exhaustive")
        }
    }

    macro_rules! int_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u64;
                    (lo as i128 + rng.below(span.saturating_add(1)) as i128) as $t
                }
            }
        )*};
    }
    int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (rng.unit_f64() as $t) * (self.end - self.start)
                }
            }
        )*};
    }
    float_range_strategies!(f32, f64);

    impl Strategy for bool {
        type Value = bool;
        fn generate(&self, _rng: &mut TestRng) -> bool {
            // `bool` as a strategy constant (rarely used); yields itself.
            *self
        }
    }

    /// String strategy from a regex-subset literal, e.g. `"[a-z]{0,6}"`.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            crate::string::generate_from_pattern(self, rng)
        }
    }

    macro_rules! tuple_strategies {
        ($(($($S:ident . $idx:tt),+))+) => {$(
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )+};
    }
    tuple_strategies!((A.0)(A.0, B.1)(A.0, B.1, C.2)(A.0, B.1, C.2, D.3)(
        A.0, B.1, C.2, D.3, E.4
    )(A.0, B.1, C.2, D.3, E.4, F.5));
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Length bound for collection strategies, `[lo, hi)`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

mod string {
    use crate::test_runner::TestRng;

    /// Generate a string matching a small regex subset: sequences of
    /// literal chars or `[...]` classes, each optionally quantified with
    /// `{m,n}`, `{m}`, `*`, `+` or `?`.
    pub fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            let alphabet: Vec<char> = match chars[i] {
                '[' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == ']')
                        .map(|p| i + p)
                        .unwrap_or_else(|| panic!("unclosed [ in pattern {pattern:?}"));
                    let mut alpha = Vec::new();
                    let mut j = i + 1;
                    while j < close {
                        if j + 2 < close && chars[j + 1] == '-' {
                            let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                            assert!(lo <= hi, "bad class range in {pattern:?}");
                            alpha.extend((lo..=hi).filter_map(char::from_u32));
                            j += 3;
                        } else {
                            alpha.push(chars[j]);
                            j += 1;
                        }
                    }
                    i = close + 1;
                    alpha
                }
                '\\' => {
                    i += 1;
                    let c = chars.get(i).copied().unwrap_or('\\');
                    i += 1;
                    vec![c]
                }
                c => {
                    i += 1;
                    vec![c]
                }
            };
            assert!(!alphabet.is_empty(), "empty char class in {pattern:?}");

            // Quantifier.
            let (min, max) = match chars.get(i) {
                Some('{') => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .map(|p| i + p)
                        .unwrap_or_else(|| panic!("unclosed {{ in pattern {pattern:?}"));
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    match body.split_once(',') {
                        Some((m, n)) => (
                            m.trim().parse::<usize>().expect("bad quantifier"),
                            n.trim().parse::<usize>().expect("bad quantifier"),
                        ),
                        None => {
                            let m = body.trim().parse::<usize>().expect("bad quantifier");
                            (m, m)
                        }
                    }
                }
                Some('*') => {
                    i += 1;
                    (0, 8)
                }
                Some('+') => {
                    i += 1;
                    (1, 8)
                }
                Some('?') => {
                    i += 1;
                    (0, 1)
                }
                _ => (1, 1),
            };
            let count = min + rng.below((max - min + 1) as u64) as usize;
            for _ in 0..count {
                out.push(alphabet[rng.below(alphabet.len() as u64) as usize]);
            }
        }
        out
    }
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)+)),
            );
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( ($weight as u32, $crate::strategy::union_arm($strat)) ),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( (1u32, $crate::strategy::union_arm($strat)) ),+
        ])
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ [$config] $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ [$crate::test_runner::ProptestConfig::default()] $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    ([$config:expr] $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $config;
                let strat = ($($strat,)+);
                $crate::test_runner::run(&config, &strat, |($($pat,)+)| {
                    $body
                    ::std::result::Result::Ok(())
                });
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Cmd {
        Push(u8),
        Pop,
    }

    fn cmds() -> impl Strategy<Value = Cmd> {
        prop_oneof![
            3 => (0u8..10).prop_map(Cmd::Push),
            1 => Just(Cmd::Pop),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn ranges_in_bounds(x in 5u32..10, y in -2i64..3, f in 0.25f64..0.75) {
            prop_assert!((5..10).contains(&x));
            prop_assert!((-2..3).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn tuples_and_flat_map((a, b) in (1usize..5, 0usize..4).prop_flat_map(|(n, k)| (Just(n), 0usize..(n + k + 1)))) {
            prop_assert!((1..5).contains(&a));
            prop_assert!(b < a + 4);
        }

        #[test]
        fn regex_subset(s in "[a-c]{0,6}") {
            prop_assert!(s.len() <= 6);
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }

        #[test]
        fn vec_strategy_and_model(ops in crate::collection::vec(super::tests::cmds(), 1..40)) {
            let mut stack = Vec::new();
            for op in ops {
                match op {
                    super::tests::Cmd::Push(x) => stack.push(x),
                    super::tests::Cmd::Pop => { stack.pop(); }
                }
            }
            prop_assert!(stack.len() <= 40);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy as _;
        let strat = (0u64..1000, "[a-z]{1,4}");
        let gen = |seed: u64| {
            let mut rng = crate::test_runner::TestRng::new(seed);
            (0..20)
                .map(|_| strat.generate(&mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(gen(7), gen(7));
        assert_ne!(gen(7), gen(8));
    }
}
