//! Offline shim for `serde_derive`.
//!
//! Parses the derive input token stream directly (the registry is
//! unreachable in this environment, so `syn`/`quote` are unavailable)
//! and emits `Serialize`/`Deserialize` impls against the vendored
//! `serde` shim's `Content` model.
//!
//! Supported input shapes — exactly what this workspace derives:
//! non-generic structs (named, tuple/newtype, unit) and non-generic
//! enums with unit, tuple, or struct variants. `#[serde(...)]`
//! attributes are not supported (none exist in-repo) and generics are
//! rejected with a compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Fields {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

#[derive(Debug)]
enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<(String, Fields)>,
    },
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, gen: fn(&Item) -> String) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(msg) => {
            return format!("compile_error!({msg:?});").parse().unwrap();
        }
    };
    gen(&item).parse().unwrap()
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    skip_attrs_and_vis(&tokens, &mut i);

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" => "struct",
        Some(TokenTree::Ident(id)) if id.to_string() == "enum" => "enum",
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    i += 1;

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    i += 1;

    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde_derive shim: generic type `{name}` is not supported"
        ));
    }

    if kind == "struct" {
        match tokens.get(i) {
            // struct S { ... }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item::Struct {
                name,
                fields: Fields::Named(parse_named_fields(g.stream())?),
            }),
            // struct S(...);
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Ok(Item::Struct {
                    name,
                    fields: Fields::Tuple(count_top_level_fields(g.stream())),
                })
            }
            // struct S;
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Item::Struct {
                name,
                fields: Fields::Unit,
            }),
            other => Err(format!("unsupported struct body: {other:?}")),
        }
    } else {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item::Enum {
                name,
                variants: parse_variants(g.stream())?,
            }),
            other => Err(format!("expected enum body, found {other:?}")),
        }
    }
}

/// Advance past `#[...]` attributes and `pub` / `pub(...)` visibility.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // '#' + bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Count comma-separated fields at the top level of a tuple-struct or
/// tuple-variant body. Commas nested in `<...>` or any bracket group do
/// not count ((), [] and {} arrive pre-grouped; angle brackets need
/// explicit depth tracking).
fn count_top_level_fields(stream: TokenStream) -> usize {
    let mut fields = 0usize;
    let mut saw_token = false;
    let mut angle_depth = 0i32;
    let mut prev_was_minus = false;
    for tt in stream {
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => angle_depth += 1,
                // `->` in fn-pointer types must not close a generic.
                '>' if !prev_was_minus => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    if saw_token {
                        fields += 1;
                    }
                    saw_token = false;
                }
                _ => {}
            }
        }
        prev_was_minus = matches!(&tt, TokenTree::Punct(p) if p.as_char() == '-');
        if !matches!(&tt, TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0) {
            saw_token = true;
        }
    }
    if saw_token {
        fields += 1;
    }
    fields
}

/// Field names of a named-field body: `attrs vis name: Type, ...`.
fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut names = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let Some(tt) = tokens.get(i) else { break };
        match tt {
            TokenTree::Ident(id) => {
                names.push(id.to_string());
                i += 1;
            }
            other => return Err(format!("expected field name, found {other:?}")),
        }
        // Skip `: Type` up to the next top-level comma.
        let mut angle_depth = 0i32;
        let mut prev_was_minus = false;
        while let Some(tt) = tokens.get(i) {
            if let TokenTree::Punct(p) = tt {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' if !prev_was_minus => angle_depth -= 1,
                    ',' if angle_depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
                prev_was_minus = p.as_char() == '-';
            } else {
                prev_was_minus = false;
            }
            i += 1;
        }
    }
    Ok(names)
}

/// Variants of an enum body: `attrs Name (payload)? (= disc)? , ...`.
fn parse_variants(stream: TokenStream) -> Result<Vec<(String, Fields)>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let Some(tt) = tokens.get(i) else { break };
        let name = match tt {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_top_level_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g.stream())?)
            }
            _ => Fields::Unit,
        };
        // Skip any explicit discriminant, then the trailing comma.
        while let Some(tt) = tokens.get(i) {
            if matches!(tt, TokenTree::Punct(p) if p.as_char() == ',') {
                i += 1;
                break;
            }
            i += 1;
        }
        variants.push((name, fields));
    }
    Ok(variants)
}

// ---------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => "::serde::Content::Null".to_string(),
                // Newtype structs serialize transparently, like serde.
                Fields::Tuple(1) => "::serde::Serialize::serialize_content(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::serialize_content(&self.{i})"))
                        .collect();
                    format!("::serde::Content::Seq(vec![{}])", items.join(", "))
                }
                Fields::Named(names) => {
                    let entries: Vec<String> = names
                        .iter()
                        .map(|f| {
                            format!(
                                "({f:?}.to_string(), ::serde::Serialize::serialize_content(&self.{f}))"
                            )
                        })
                        .collect();
                    format!("::serde::Content::Map(vec![{}])", entries.join(", "))
                }
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn serialize_content(&self) -> ::serde::Content {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, fields)| match fields {
                    Fields::Unit => {
                        format!("Self::{v} => ::serde::Content::Str({v:?}.to_string()),")
                    }
                    Fields::Tuple(1) => format!(
                        "Self::{v}(f0) => ::serde::Content::Map(vec![({v:?}.to_string(), \
                         ::serde::Serialize::serialize_content(f0))]),"
                    ),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::serialize_content({b})"))
                            .collect();
                        format!(
                            "Self::{v}({binds}) => ::serde::Content::Map(vec![({v:?}.to_string(), \
                             ::serde::Content::Seq(vec![{items}]))]),",
                            binds = binds.join(", "),
                            items = items.join(", ")
                        )
                    }
                    Fields::Named(names) => {
                        let binds = names.join(", ");
                        let entries: Vec<String> = names
                            .iter()
                            .map(|f| {
                                format!(
                                    "({f:?}.to_string(), ::serde::Serialize::serialize_content({f}))"
                                )
                            })
                            .collect();
                        format!(
                            "Self::{v} {{ {binds} }} => ::serde::Content::Map(vec![({v:?}.to_string(), \
                             ::serde::Content::Map(vec![{entries}]))]),",
                            entries = entries.join(", ")
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn serialize_content(&self) -> ::serde::Content {{ match self {{ {} }} }}\n\
                 }}",
                arms.join("\n")
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => format!("::std::result::Result::Ok({name})"),
                Fields::Tuple(1) => {
                    format!("::std::result::Result::Ok({name}(::serde::from_content(content)?))")
                }
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::from_content(&items[{i}])?"))
                        .collect();
                    format!(
                        "let items = content.as_seq()?;\n\
                         if items.len() != {n} {{\n\
                             return ::std::result::Result::Err(::serde::Error::custom(\
                                 format!(\"expected {n} fields for {name}, got {{}}\", items.len())));\n\
                         }}\n\
                         ::std::result::Result::Ok({name}({}))",
                        items.join(", ")
                    )
                }
                Fields::Named(names) => {
                    let inits: Vec<String> = names
                        .iter()
                        .map(|f| format!("{f}: ::serde::from_content(content.get_field({f:?})?)?,"))
                        .collect();
                    format!(
                        "::std::result::Result::Ok({name} {{ {} }})",
                        inits.join("\n")
                    )
                }
            };
            format!(
                "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
                 fn deserialize_content(content: &::serde::Content) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 {body}\n\
                 }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, fields)| match fields {
                    Fields::Unit => {
                        format!("{v:?} => ::std::result::Result::Ok(Self::{v}),")
                    }
                    Fields::Tuple(1) => format!(
                        "{v:?} => {{\n\
                         let payload = payload.ok_or_else(|| ::serde::Error::custom(\
                             \"variant {v} expects a payload\"))?;\n\
                         ::std::result::Result::Ok(Self::{v}(::serde::from_content(payload)?))\n\
                         }}"
                    ),
                    Fields::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::from_content(&items[{i}])?"))
                            .collect();
                        format!(
                            "{v:?} => {{\n\
                             let payload = payload.ok_or_else(|| ::serde::Error::custom(\
                                 \"variant {v} expects a payload\"))?;\n\
                             let items = payload.as_seq()?;\n\
                             if items.len() != {n} {{\n\
                                 return ::std::result::Result::Err(::serde::Error::custom(\
                                     \"wrong arity for variant {v}\"));\n\
                             }}\n\
                             ::std::result::Result::Ok(Self::{v}({}))\n\
                             }}",
                            items.join(", ")
                        )
                    }
                    Fields::Named(names) => {
                        let inits: Vec<String> = names
                            .iter()
                            .map(|f| {
                                format!("{f}: ::serde::from_content(payload.get_field({f:?})?)?,")
                            })
                            .collect();
                        format!(
                            "{v:?} => {{\n\
                             let payload = payload.ok_or_else(|| ::serde::Error::custom(\
                                 \"variant {v} expects a payload\"))?;\n\
                             ::std::result::Result::Ok(Self::{v} {{ {} }})\n\
                             }}",
                            inits.join("\n")
                        )
                    }
                })
                .collect();
            format!(
                "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
                 fn deserialize_content(content: &::serde::Content) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 let (tag, payload) = content.variant()?;\n\
                 match tag {{\n\
                 {}\n\
                 other => ::std::result::Result::Err(::serde::Error::custom(\
                     format!(\"unknown variant `{{other}}` for {name}\"))),\n\
                 }}\n\
                 }}\n\
                 }}",
                arms.join("\n")
            )
        }
    }
}
