//! Offline shim for `serde`.
//!
//! Instead of serde's visitor-based zero-copy core, this shim round-trips
//! every value through an owned [`Content`] tree (the same idea as
//! `serde_json::Value`). `Serialize` renders a value into a `Content`;
//! `Deserialize` rebuilds a value from one. Formats (here only the
//! vendored `serde_json`) translate between `Content` and text.
//!
//! The derive macros in the companion `serde_derive` shim generate
//! implementations that follow serde's externally-tagged conventions so
//! existing JSON fixtures keep their shape:
//!
//! * named-field structs -> maps keyed by field name;
//! * newtype structs -> the inner value, transparently;
//! * tuple structs -> sequences;
//! * unit enum variants -> the variant name as a string;
//! * data-carrying variants -> `{"Variant": payload}`.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap, VecDeque};

/// Self-describing value tree — the interchange format between
/// `Serialize`/`Deserialize` impls and data formats.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Seq(Vec<Content>),
    /// JSON-style map: string keys, insertion order preserved.
    Map(Vec<(String, Content)>),
}

/// Error raised while rebuilding a value from a [`Content`] tree.
#[derive(Debug, Clone)]
pub struct Error(pub String);

impl Error {
    pub fn custom(msg: impl std::fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

pub trait Serialize {
    fn serialize_content(&self) -> Content;
}

/// The `'de` lifetime mirrors real serde's signature so existing bounds
/// like `for<'de> Deserialize<'de>` compile unchanged; this shim is
/// always owned, so the lifetime is vacuous.
pub trait Deserialize<'de>: Sized {
    fn deserialize_content(content: &Content) -> Result<Self, Error>;
}

/// Convenience used by generated code and formats.
pub fn to_content<T: Serialize + ?Sized>(value: &T) -> Content {
    value.serialize_content()
}

/// Convenience used by generated code and formats.
pub fn from_content<'de, T: Deserialize<'de>>(content: &Content) -> Result<T, Error> {
    T::deserialize_content(content)
}

impl Content {
    fn kind(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::U64(_) => "unsigned integer",
            Content::I64(_) => "integer",
            Content::F64(_) => "float",
            Content::Str(_) => "string",
            Content::Seq(_) => "sequence",
            Content::Map(_) => "map",
        }
    }

    pub fn as_seq(&self) -> Result<&[Content], Error> {
        match self {
            Content::Seq(items) => Ok(items),
            other => Err(Error::custom(format!(
                "expected sequence, got {}",
                other.kind()
            ))),
        }
    }

    pub fn as_map(&self) -> Result<&[(String, Content)], Error> {
        match self {
            Content::Map(entries) => Ok(entries),
            other => Err(Error::custom(format!("expected map, got {}", other.kind()))),
        }
    }

    pub fn as_str(&self) -> Result<&str, Error> {
        match self {
            Content::Str(s) => Ok(s),
            other => Err(Error::custom(format!(
                "expected string, got {}",
                other.kind()
            ))),
        }
    }

    /// Struct-field lookup used by derived `Deserialize` impls.
    pub fn get_field(&self, name: &str) -> Result<&Content, Error> {
        for (k, v) in self.as_map()? {
            if k == name {
                return Ok(v);
            }
        }
        // Missing fields deserialize as Null so `Option` fields (and
        // only those) tolerate absence, mirroring serde's common shape.
        Ok(&Content::Null)
    }

    /// Externally-tagged enum access: `"V"` -> `("V", None)`,
    /// `{"V": data}` -> `("V", Some(data))`.
    pub fn variant(&self) -> Result<(&str, Option<&Content>), Error> {
        match self {
            Content::Str(s) => Ok((s, None)),
            Content::Map(entries) if entries.len() == 1 => {
                Ok((entries[0].0.as_str(), Some(&entries[0].1)))
            }
            other => Err(Error::custom(format!(
                "expected enum variant (string or single-entry map), got {}",
                other.kind()
            ))),
        }
    }
}

// ---------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------

impl Serialize for bool {
    fn serialize_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!(
                "expected bool, got {}",
                other.kind()
            ))),
        }
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_content(&self) -> Content {
                Content::U64(*self as u64)
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn deserialize_content(content: &Content) -> Result<Self, Error> {
                let raw: u64 = match content {
                    Content::U64(v) => *v,
                    Content::I64(v) if *v >= 0 => *v as u64,
                    Content::F64(v) if v.fract() == 0.0 && *v >= 0.0 => *v as u64,
                    other => {
                        return Err(Error::custom(format!(
                            "expected unsigned integer, got {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom(format!("{} out of range for {}", raw, stringify!($t))))
            }
        }
    )*};
}
impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_content(&self) -> Content {
                let v = *self as i64;
                if v >= 0 { Content::U64(v as u64) } else { Content::I64(v) }
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn deserialize_content(content: &Content) -> Result<Self, Error> {
                let raw: i64 = match content {
                    Content::I64(v) => *v,
                    Content::U64(v) => i64::try_from(*v)
                        .map_err(|_| Error::custom(format!("{} out of range for i64", v)))?,
                    Content::F64(v) if v.fract() == 0.0 => *v as i64,
                    other => {
                        return Err(Error::custom(format!(
                            "expected integer, got {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom(format!("{} out of range for {}", raw, stringify!($t))))
            }
        }
    )*};
}
impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn deserialize_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::F64(v) => Ok(*v),
            Content::U64(v) => Ok(*v as f64),
            Content::I64(v) => Ok(*v as f64),
            // Non-finite floats serialize as null (serde_json convention).
            Content::Null => Ok(f64::NAN),
            other => Err(Error::custom(format!(
                "expected float, got {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for f32 {
    fn serialize_content(&self) -> Content {
        Content::F64(*self as f64)
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn deserialize_content(content: &Content) -> Result<Self, Error> {
        f64::deserialize_content(content).map(|v| v as f32)
    }
}

impl Serialize for String {
    fn serialize_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Serialize for str {
    fn serialize_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize_content(content: &Content) -> Result<Self, Error> {
        content.as_str().map(str::to_string)
    }
}

impl Serialize for char {
    fn serialize_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl<'de> Deserialize<'de> for char {
    fn deserialize_content(content: &Content) -> Result<Self, Error> {
        let s = content.as_str()?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-character string")),
        }
    }
}

// ---------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_content(&self) -> Content {
        (**self).serialize_content()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize_content(&self) -> Content {
        (**self).serialize_content()
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn deserialize_content(content: &Content) -> Result<Self, Error> {
        T::deserialize_content(content).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_content(&self) -> Content {
        match self {
            Some(v) => v.serialize_content(),
            None => Content::Null,
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Null => Ok(None),
            other => T::deserialize_content(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize_content).collect())
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize_content(content: &Content) -> Result<Self, Error> {
        content
            .as_seq()?
            .iter()
            .map(T::deserialize_content)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize_content).collect())
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn serialize_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize_content).collect())
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for VecDeque<T> {
    fn deserialize_content(content: &Content) -> Result<Self, Error> {
        content
            .as_seq()?
            .iter()
            .map(T::deserialize_content)
            .collect()
    }
}

impl<V: Serialize, S> Serialize for HashMap<String, V, S> {
    fn serialize_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.serialize_content()))
                .collect(),
        )
    }
}

impl<'de, V: Deserialize<'de>, S> Deserialize<'de> for HashMap<String, V, S>
where
    S: std::hash::BuildHasher + Default,
{
    fn deserialize_content(content: &Content) -> Result<Self, Error> {
        content
            .as_map()?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::deserialize_content(v)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.serialize_content()))
                .collect(),
        )
    }
}

impl<'de, V: Deserialize<'de>> Deserialize<'de> for BTreeMap<String, V> {
    fn deserialize_content(content: &Content) -> Result<Self, Error> {
        content
            .as_map()?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::deserialize_content(v)?)))
            .collect()
    }
}

macro_rules! impl_serde_tuple {
    ($(($len:expr => $($idx:tt $name:ident),+)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize_content(&self) -> Content {
                Content::Seq(vec![$(self.$idx.serialize_content()),+])
            }
        }
        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn deserialize_content(content: &Content) -> Result<Self, Error> {
                let items = content.as_seq()?;
                if items.len() != $len {
                    return Err(Error::custom(format!(
                        "expected tuple of {}, got sequence of {}",
                        $len,
                        items.len()
                    )));
                }
                Ok(($($name::deserialize_content(&items[$idx])?,)+))
            }
        }
    )+};
}

impl_serde_tuple!(
    (1 => 0 A),
    (2 => 0 A, 1 B),
    (3 => 0 A, 1 B, 2 C),
    (4 => 0 A, 1 B, 2 C, 3 D),
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(
            u32::deserialize_content(&42u32.serialize_content()).unwrap(),
            42
        );
        assert_eq!(
            i64::deserialize_content(&(-7i64).serialize_content()).unwrap(),
            -7
        );
        assert_eq!(
            String::deserialize_content(&"hi".to_string().serialize_content()).unwrap(),
            "hi"
        );
        assert_eq!(
            Option::<u8>::deserialize_content(&Content::Null).unwrap(),
            None
        );
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![(String::from("k"), 3u64)];
        let c = v.serialize_content();
        let back: Vec<(String, u64)> = from_content(&c).unwrap();
        assert_eq!(back, v);

        let mut m = HashMap::new();
        m.insert("a".to_string(), 1u32);
        let back: HashMap<String, u32> = from_content(&m.serialize_content()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn wrong_kind_is_an_error() {
        assert!(u8::deserialize_content(&Content::Str("x".into())).is_err());
        assert!(bool::deserialize_content(&Content::U64(1)).is_err());
    }
}
