//! Offline shim for `criterion`: a small wall-clock micro-benchmark
//! harness exposing the API the workspace's benches use
//! (`criterion_group!`/`criterion_main!`, `Criterion::benchmark_group`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `Throughput`,
//! `Bencher::iter`/`iter_batched`).
//!
//! Measurement model: each benchmark is calibrated with a short warm-up
//! to pick an iteration count that fills the target measurement window,
//! then timed over `sample_size` samples; the median ns/iter is printed
//! together with min/max. No statistics beyond that, no HTML reports,
//! no baseline comparison files — timings go to stdout.

pub use std::hint::black_box;

use std::time::{Duration, Instant};

#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Accepts both `&str` names and `BenchmarkId`s.
pub trait IntoBenchmarkId {
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

#[derive(Debug, Clone)]
struct Settings {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            sample_size: 12,
            measurement_time: Duration::from_millis(400),
            warm_up_time: Duration::from_millis(80),
        }
    }
}

fn run_benchmark(
    id: &str,
    settings: &Settings,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    // Calibrate: run single iterations until the warm-up window is spent,
    // to estimate per-iteration cost.
    let warm_start = Instant::now();
    let mut warm_iters = 0u64;
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    while warm_start.elapsed() < settings.warm_up_time || warm_iters == 0 {
        f(&mut bencher);
        warm_iters += 1;
        if warm_iters >= 1_000 {
            break;
        }
    }
    let per_iter = warm_start.elapsed().as_nanos().max(1) / warm_iters.max(1) as u128;
    let window_ns = settings.measurement_time.as_nanos() / settings.sample_size.max(1) as u128;
    let iters = (window_ns / per_iter.max(1)).clamp(1, 10_000_000) as u64;

    let mut samples_ns: Vec<f64> = Vec::with_capacity(settings.sample_size);
    for _ in 0..settings.sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples_ns.push(b.elapsed.as_nanos() as f64 / iters as f64);
    }
    samples_ns.sort_by(|a, b| a.total_cmp(b));
    let median = samples_ns[samples_ns.len() / 2];
    let min = samples_ns[0];
    let max = samples_ns[samples_ns.len() - 1];

    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => format!(" {:.1} Melem/s", n as f64 / median * 1e3),
        Throughput::Bytes(n) => {
            format!(" {:.1} MiB/s", n as f64 / median * 1e9 / (1024.0 * 1024.0))
        }
    });

    println!(
        "bench {id:<50} median {median:>12.1} ns/iter (min {min:.1}, max {max:.1}, {iters} iters/sample){}",
        rate.unwrap_or_default()
    );
}

#[derive(Default)]
pub struct Criterion {
    settings: Settings,
}

impl Criterion {
    pub fn bench_function(
        &mut self,
        id: impl IntoBenchmarkId,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_benchmark(&id.into_id(), &self.settings, None, f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            settings: self.settings.clone(),
            throughput: None,
            _parent: self,
        }
    }

    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn sample_size(mut self, n: usize) -> Self {
        self.settings.sample_size = n.max(2);
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.settings.measurement_time = d;
        self
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    settings: Settings,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n.max(2);
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.settings.measurement_time = d;
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.settings.warm_up_time = d;
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl IntoBenchmarkId,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_id());
        run_benchmark(&full, &self.settings, self.throughput, f);
        self
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.id);
        run_benchmark(&full, &self.settings, self.throughput, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        // Generated harness entry points are not public API surface.
        #[allow(missing_docs)]
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(10));
        c.bench_function("smoke/sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        let mut g = c.benchmark_group("group");
        g.sample_size(2).measurement_time(Duration::from_millis(5));
        g.throughput(Throughput::Elements(100));
        g.bench_with_input(BenchmarkId::new("param", 7), &7u64, |b, &x| {
            b.iter(|| x * 2);
        });
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::LargeInput);
        });
        g.finish();
    }
}
