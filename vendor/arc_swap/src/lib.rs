//! Offline shim of the `arc-swap` crate: an atomically swappable
//! `Arc<T>` for RCU-style snapshot publication.
//!
//! Readers call [`ArcSwap::load`] and get an owned `Arc<T>` with a single
//! `Acquire` pointer load plus one reference-count increment — no lock,
//! no spin, wait-free. Writers build a new value and [`ArcSwap::store`]
//! it; readers caught mid-publication keep whichever snapshot they
//! pinned.
//!
//! Reclamation strategy (simpler than upstream's hazard-pointer hybrid):
//! every `Arc` ever published is retained in a retire list until the
//! `ArcSwap` drops or the owner calls [`ArcSwap::collect_garbage`], which
//! requires `&mut self` — exclusive access proves no `load` is mid-flight,
//! so there is no grace-period protocol to get wrong. The intended
//! workload (cluster membership epochs) publishes one snapshot per
//! membership transition, so retention is bounded by the epoch count —
//! the same growth the membership history itself already has.

// Sync facade: with the `modelcheck` feature the pointer atomic and the
// retire-list mutex are the instrumented ech-modelcheck primitives, so
// the interleaving explorer schedules (and happens-before-checks) this
// exact publication protocol. Without the feature these are the plain
// std types — zero additional cost.
#[cfg(feature = "modelcheck")]
use ech_modelcheck::sync::{AtomicPtr, Mutex, MutexGuard};
#[cfg(not(feature = "modelcheck"))]
use std::sync::atomic::AtomicPtr;
use std::sync::atomic::Ordering;
use std::sync::Arc;
#[cfg(not(feature = "modelcheck"))]
use std::sync::{Mutex, MutexGuard};

/// Lock a retire-list mutex under either facade (std's poison layer is
/// ignored: the list is a plain `Vec` with no invariants a panicked
/// pusher could break).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    #[cfg(feature = "modelcheck")]
    {
        m.lock()
    }
    #[cfg(not(feature = "modelcheck"))]
    {
        m.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// Exclusive access under either facade.
fn lock_mut<T>(m: &mut Mutex<T>) -> &mut T {
    #[cfg(feature = "modelcheck")]
    {
        m.get_mut()
    }
    #[cfg(not(feature = "modelcheck"))]
    {
        m.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// The instrumented [`ArcSwap`]: with the `modelcheck` feature enabled
/// this *is* the checked primitive (`MArcSwap` in the model-checker's
/// naming scheme) — same type, instrumented internals.
#[cfg(feature = "modelcheck")]
pub type MArcSwap<T> = ArcSwap<T>;

/// An `Arc<T>` that can be atomically replaced.
pub struct ArcSwap<T> {
    /// Raw pointer to the currently published value. Always points at
    /// the payload of one of the `Arc`s held in `retired`.
    current: AtomicPtr<T>,
    /// Strong references backing every pointer ever stored in
    /// `current`; the live snapshot is always among them.
    retired: Mutex<Vec<Arc<T>>>,
}

impl<T> ArcSwap<T> {
    /// Publish `initial` as the first snapshot.
    pub fn new(initial: Arc<T>) -> Self {
        let ptr = Arc::as_ptr(&initial).cast_mut();
        ArcSwap {
            current: AtomicPtr::new(ptr),
            retired: Mutex::new(vec![initial]),
        }
    }

    /// Convenience constructor from an owned value.
    pub fn from_pointee(value: T) -> Self {
        ArcSwap::new(Arc::new(value))
    }

    /// Pin and return the current snapshot (wait-free).
    pub fn load(&self) -> Arc<T> {
        let ptr = self.current.load(Ordering::Acquire);
        // SAFETY: `ptr` was produced by `Arc::as_ptr` on an `Arc` held in
        // `self.retired`. Entries are only removed from the retire list
        // under `&mut self` (`collect_garbage`) or in `Drop`, both of
        // which exclude concurrent `load` calls by Rust's aliasing rules.
        // The strong count is therefore ≥ 1 for the whole call, so
        // incrementing it and materialising an owned `Arc` is sound.
        unsafe {
            Arc::increment_strong_count(ptr);
            Arc::from_raw(ptr)
        }
    }

    /// Alias for [`ArcSwap::load`] matching upstream's `load_full`.
    pub fn load_full(&self) -> Arc<T> {
        self.load()
    }

    /// Atomically publish a new snapshot. Readers that already loaded
    /// the previous one keep it alive through their own `Arc`; the
    /// superseded snapshot stays on the retire list (see module docs).
    pub fn store(&self, new: Arc<T>) {
        let ptr = Arc::as_ptr(&new).cast_mut();
        let mut retired = lock(&self.retired);
        retired.push(new);
        self.current.store(ptr, Ordering::Release);
    }

    /// **Deliberately weakened publication** (modelcheck builds only):
    /// [`ArcSwap::store`] with the pointer swap downgraded to `Relaxed`.
    /// Under the checker's weak-memory mode the store sits in the
    /// publishing thread's store buffer, so readers can pin a *stale*
    /// snapshot arbitrarily long after the "publication" — the exact
    /// regression the D5 ordering discipline prevents. Memory-safe even
    /// when stale: the retire list pins every `Arc` ever published, so
    /// the old pointer still refers to a live allocation.
    #[cfg(feature = "modelcheck")]
    pub fn store_relaxed_for_modelcheck(&self, new: Arc<T>) {
        let ptr = Arc::as_ptr(&new).cast_mut();
        let mut retired = lock(&self.retired);
        retired.push(new);
        // ech-allow(D5): deliberate seeded bug — the weak-memory models
        // need a real Relaxed publication for the checker to catch.
        self.current.store(ptr, Ordering::Relaxed);
    }

    /// Replace the snapshot and return the previously published one.
    pub fn swap(&self, new: Arc<T>) -> Arc<T> {
        let old = self.load();
        self.store(new);
        old
    }

    /// Drop retired snapshots no reader holds any more (the live one is
    /// always kept). Takes `&mut self`: exclusive access guarantees no
    /// `load` is between its pointer read and count increment, which is
    /// what makes dropping a count-1 entry safe. Returns the number
    /// reclaimed.
    pub fn collect_garbage(&mut self) -> usize {
        let live = self.current.load(Ordering::Acquire);
        let retired = lock_mut(&mut self.retired);
        let before = retired.len();
        retired.retain(|a| Arc::strong_count(a) > 1 || Arc::as_ptr(a).cast_mut() == live);
        before - retired.len()
    }

    /// Number of retained snapshots (live + superseded history).
    pub fn retired_len(&self) -> usize {
        lock(&self.retired).len()
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for ArcSwap<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ArcSwap")
            .field("current", &self.load())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn load_returns_published_value() {
        let s = ArcSwap::from_pointee(41);
        assert_eq!(*s.load(), 41);
        s.store(Arc::new(42));
        assert_eq!(*s.load(), 42);
    }

    #[test]
    fn readers_keep_their_pinned_snapshot() {
        let s = ArcSwap::from_pointee(String::from("epoch-1"));
        let pinned = s.load();
        s.store(Arc::new(String::from("epoch-2")));
        assert_eq!(*pinned, "epoch-1");
        assert_eq!(*s.load(), "epoch-2");
    }

    #[test]
    fn collect_garbage_reclaims_unpinned_history() {
        let mut s = ArcSwap::from_pointee(0usize);
        let pinned = s.load(); // pins snapshot 0
        for i in 1..100usize {
            s.store(Arc::new(i));
        }
        assert_eq!(s.retired_len(), 100);
        let freed = s.collect_garbage();
        // Everything goes except the live snapshot and the pinned one.
        assert_eq!(freed, 98);
        assert_eq!(*pinned, 0);
        assert_eq!(*s.load(), 99);
        drop(pinned);
        assert_eq!(s.collect_garbage(), 1);
        assert_eq!(s.retired_len(), 1);
    }

    /// Explorer-driven variant of the coherence test: with the
    /// `modelcheck` feature on, the checker exhaustively interleaves
    /// this exact publication protocol (bounded preemptions) and proves
    /// a reader can never observe a torn snapshot — every published
    /// pair is `(n, n)`.
    #[cfg(feature = "modelcheck")]
    #[test]
    fn modelcheck_load_store_stays_coherent() {
        let report = ech_modelcheck::explore(
            "arc-swap-coherence",
            &ech_modelcheck::Config::default(),
            |env| {
                let s = Arc::new(ArcSwap::from_pointee((0u64, 0u64)));
                {
                    let s = Arc::clone(&s);
                    env.spawn(move || {
                        for n in 1..=2u64 {
                            s.store(Arc::new((n, n)));
                        }
                    });
                }
                env.spawn(move || {
                    for _ in 0..2 {
                        let v = s.load();
                        assert_eq!(v.0, v.1);
                    }
                });
            },
        );
        assert!(report.failure.is_none(), "{:?}", report.failure);
        assert!(report.exhausted, "bounded space should be fully explored");
    }

    #[test]
    fn concurrent_load_store_stays_coherent() {
        let s = Arc::new(ArcSwap::from_pointee((0u64, 0u64)));
        let loads = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let s = Arc::clone(&s);
                let loads = &loads;
                scope.spawn(move || {
                    for _ in 0..20_000 {
                        let v = s.load();
                        // Writers always publish (n, n): a torn read
                        // would show a mismatched pair.
                        assert_eq!(v.0, v.1);
                        loads.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
            let s = Arc::clone(&s);
            scope.spawn(move || {
                for n in 1..=5_000u64 {
                    s.store(Arc::new((n, n)));
                }
            });
        });
        assert_eq!(loads.load(Ordering::Relaxed), 80_000);
        assert_eq!(*s.load(), (5_000, 5_000));
    }
}
