//! Offline shim for `serde_json`: renders the vendored serde shim's
//! `Content` tree to JSON text and parses JSON text back into one.
//!
//! Supports the full JSON grammar (objects, arrays, strings with
//! escapes including `\uXXXX` surrogate pairs, numbers, literals).
//! Floats print with Rust's shortest-roundtrip `Display`, so
//! `to_string`/`from_str` round-trips are exact; non-finite floats
//! serialize as `null` (real serde_json's behaviour for f64 in `Value`).

use serde::{Content, Deserialize, Serialize};

#[derive(Debug, Clone)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.0)
    }
}

pub type Result<T> = std::result::Result<T, Error>;

pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_content(&value.serialize_content(), &mut out);
    Ok(out)
}

pub fn from_str<'a, T: Deserialize<'a>>(s: &'a str) -> Result<T> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let content = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(T::deserialize_content(&content)?)
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

fn write_content(c: &Content, out: &mut String) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(true) => out.push_str("true"),
        Content::Bool(false) => out.push_str("false"),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => {
            if v.is_finite() {
                let s = v.to_string();
                out.push_str(&s);
                // Keep floats lexically floats so integers/floats stay
                // distinguishable in the output, as serde_json does.
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Content::Str(s) => write_escaped(s, out),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_content(item, out);
            }
            out.push(']');
        }
        Content::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_content(v, out);
            }
            out.push('}');
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<()> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{kw}`")))
        }
    }

    fn parse_value(&mut self) -> Result<Content> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                self.eat_keyword("null")?;
                Ok(Content::Null)
            }
            Some(b't') => {
                self.eat_keyword("true")?;
                Ok(Content::Bool(true))
            }
            Some(b'f') => {
                self.eat_keyword("false")?;
                Ok(Content::Bool(false))
            }
            Some(b'"') => self.parse_string().map(Content::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.bump() {
                        Some(b',') => continue,
                        Some(b']') => return Ok(Content::Seq(items)),
                        _ => return Err(self.err("expected `,` or `]`")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.bump() {
                        Some(b',') => continue,
                        Some(b'}') => return Ok(Content::Map(entries)),
                        _ => return Err(self.err("expected `,` or `}`")),
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            _ => Err(self.err("expected JSON value")),
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{08}'),
                    Some(b'f') => out.push('\u{0C}'),
                    Some(b'u') => {
                        let hi = self.parse_hex4()?;
                        let code = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair.
                            self.eat_keyword("\\u")?;
                            let lo = self.parse_hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(self.err("invalid low surrogate"));
                            }
                            0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                        } else {
                            hi
                        };
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| self.err("invalid unicode escape"))?,
                        );
                    }
                    _ => return Err(self.err("invalid escape")),
                },
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Re-decode the UTF-8 tail starting at this byte.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    if end > self.bytes.len() {
                        return Err(self.err("truncated UTF-8"));
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self
                .bump()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid hex digit"))?;
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Content> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if text.starts_with('-') {
                if let Ok(v) = text.parse::<i64>() {
                    return Ok(Content::I64(v));
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Ok(Content::U64(v));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| self.err("invalid number"))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(to_string(&-3i32).unwrap(), "-3");
        assert_eq!(from_str::<i32>("-3").unwrap(), -3);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&"a\"b\n".to_string()).unwrap(), r#""a\"b\n""#);
        assert_eq!(from_str::<String>(r#""a\"b\n""#).unwrap(), "a\"b\n");
    }

    #[test]
    fn float_roundtrip_is_exact() {
        for v in [
            0.1f64,
            1.0,
            -2.5e-8,
            123456.789,
            f64::MAX,
            f64::MIN_POSITIVE,
        ] {
            let s = to_string(&v).unwrap();
            assert_eq!(from_str::<f64>(&s).unwrap(), v, "failed for {s}");
        }
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
    }

    #[test]
    fn containers_roundtrip() {
        let v: Vec<Option<u32>> = vec![Some(1), None, Some(3)];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[1,null,3]");
        assert_eq!(from_str::<Vec<Option<u32>>>(&s).unwrap(), v);

        let pairs = vec![("k".to_string(), 1u8), ("l".to_string(), 2u8)];
        let s = to_string(&pairs).unwrap();
        assert_eq!(s, r#"[["k",1],["l",2]]"#);
        assert_eq!(from_str::<Vec<(String, u8)>>(&s).unwrap(), pairs);
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(from_str::<String>(r#""é😀""#).unwrap(), "é😀");
        let s = to_string(&"héllo 😀".to_string()).unwrap();
        assert_eq!(from_str::<String>(&s).unwrap(), "héllo 😀");
    }

    #[test]
    fn whitespace_tolerated() {
        let v: Vec<u8> = from_str(" [ 1 , 2 , 3 ] ").unwrap();
        assert_eq!(v, vec![1, 2, 3]);
    }

    #[test]
    fn errors_reported() {
        assert!(from_str::<u32>("[1").is_err());
        assert!(from_str::<u32>("1 2").is_err());
        assert!(from_str::<u32>("\"x\"").is_err());
    }
}
