//! Offline shim for `rand` 0.9: `StdRng` + the `Rng`/`SeedableRng`
//! trait surface the workspace uses (`seed_from_u64`, `random`,
//! `random_range`, `random_bool`).
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — not the
//! ChaCha12 of real `StdRng`, but deterministic for a given seed, which
//! is the property the simulators and workload generators rely on.

/// Low-level entropy source.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding entry point (`StdRng::seed_from_u64(s)`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly over their "natural" domain (`[0,1)` for
/// floats, the full range for integers).
pub trait StandardSample: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> [0, 1) with full double precision.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges samplable into a value of `T` (`rng.random_range(a..b)`).
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Modulo bias is < 2^-64 * span; fine for simulation use.
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as StandardSample>::sample(rng);
                self.start + u * (self.end - self.start)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// High-level sampling methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn random<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let f = rng.random::<f64>();
            assert!((0.0..1.0).contains(&f));
            let x = rng.random_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = rng.random_range(-5.0f64..5.0);
            assert!((-5.0..5.0).contains(&y));
            let z = rng.random_range(3usize..=5);
            assert!((3..=5).contains(&z));
        }
    }

    #[test]
    fn roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut buckets = [0u32; 10];
        for _ in 0..100_000 {
            buckets[rng.random_range(0usize..10)] += 1;
        }
        for &b in &buckets {
            assert!((8_000..12_000).contains(&b), "bucket {b} out of tolerance");
        }
    }
}
