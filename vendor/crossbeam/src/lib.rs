//! Offline shim for `crossbeam`, backed by `std::thread::scope` and
//! `std::sync::mpsc`.
//!
//! Provides the two surfaces the workspace uses: `crossbeam::scope` for
//! scoped threads borrowing from the parent stack, and
//! `crossbeam::channel::{unbounded, Sender, Receiver}`.

use std::any::Any;

pub mod thread {
    use super::Any;

    /// Scope handle passed to `scope` closures and to every spawned
    /// closure (crossbeam passes the scope so children can spawn
    /// grandchildren).
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }
    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    impl<'scope, 'env> Scope<'scope, 'env> {
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let me = *self;
            ScopedJoinHandle(self.inner.spawn(move || f(&me)))
        }
    }

    pub struct ScopedJoinHandle<'scope, T>(std::thread::ScopedJoinHandle<'scope, T>);

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.0.join()
        }
    }

    /// Run `f` with a scope in which borrowed-stack threads can be
    /// spawned. All spawned threads are joined before this returns. A
    /// panic in a child propagates out of `scope` (std semantics) rather
    /// than surfacing as `Err`; workspace call sites immediately
    /// `.unwrap()` the result, so the observable behaviour matches.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

pub use thread::scope;

pub mod channel {
    pub use std::sync::mpsc::{Receiver, Sender};
    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// Unbounded MPSC channel (crossbeam's is MPMC, but the workspace
    /// only ever consumes from a single owner per receiver).
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_borrows() {
        let data = [1u64, 2, 3];
        let total = crate::scope(|s| {
            let h1 = s.spawn(|_| data.iter().sum::<u64>());
            let h2 = s.spawn(|inner| {
                // Grandchild spawn through the passed-in scope.
                inner.spawn(|_| data.len()).join().unwrap()
            });
            h1.join().unwrap() + h2.join().unwrap() as u64
        })
        .unwrap();
        assert_eq!(total, 9);
    }

    #[test]
    fn channel_try_iter() {
        let (tx, rx) = crate::channel::unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.try_iter().collect::<Vec<_>>(), vec![1, 2]);
        assert!(rx.try_iter().next().is_none());
    }
}
