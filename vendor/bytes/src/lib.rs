//! Offline shim for `bytes`: an immutable, cheaply-clonable byte buffer
//! backed by `Arc<[u8]>`. Covers the subset the workspace uses —
//! constructors from strings/vectors, `Deref` to `[u8]`, equality,
//! hashing, and (behind the `serde` feature) serialization as a byte
//! sequence.

use std::ops::Deref;
use std::sync::Arc;

#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    pub fn new() -> Self {
        Bytes(Arc::from(&[][..]))
    }

    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(Arc::from(data))
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    // Inherent method mirroring the real crate's API (which also has
    // it alongside the trait impl).
    #[allow(clippy::should_implement_trait)]
    pub fn as_ref(&self) -> &[u8] {
        &self.0
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.0.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes(Arc::from(s.as_bytes()))
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes(Arc::from(s.into_bytes()))
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Arc::from(v))
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Bytes(Arc::from(v))
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self.0[..] == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        &self.0[..] == *other
    }
}

impl PartialEq<str> for Bytes {
    fn eq(&self, other: &str) -> bool {
        &self.0[..] == other.as_bytes()
    }
}

impl PartialEq<&str> for Bytes {
    fn eq(&self, other: &&str) -> bool {
        &self.0[..] == other.as_bytes()
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.0.iter() {
            match b {
                b'"' => write!(f, "\\\"")?,
                b'\\' => write!(f, "\\\\")?,
                b'\n' => write!(f, "\\n")?,
                b'\r' => write!(f, "\\r")?,
                b'\t' => write!(f, "\\t")?,
                0x20..=0x7E => write!(f, "{}", b as char)?,
                _ => write!(f, "\\x{b:02x}")?,
            }
        }
        write!(f, "\"")
    }
}

#[cfg(feature = "serde")]
impl serde::Serialize for Bytes {
    fn serialize_content(&self) -> serde::Content {
        serde::Content::Seq(
            self.0
                .iter()
                .map(|&b| serde::Content::U64(b as u64))
                .collect(),
        )
    }
}

#[cfg(feature = "serde")]
impl<'de> serde::Deserialize<'de> for Bytes {
    fn deserialize_content(content: &serde::Content) -> Result<Self, serde::Error> {
        let bytes: Vec<u8> = serde::from_content(content)?;
        Ok(Bytes::from(bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_deref() {
        let b = Bytes::from("hello");
        assert_eq!(b.len(), 5);
        assert_eq!(&b[..], b"hello");
        assert_eq!(b, Bytes::from(String::from("hello")));
        assert_eq!(Bytes::from(vec![1u8, 2]).to_vec(), vec![1, 2]);
        assert!(Bytes::new().is_empty());
    }

    #[test]
    fn clone_is_shallow() {
        let a = Bytes::from("shared payload");
        let b = a.clone();
        assert!(std::ptr::eq(a.as_ref().as_ptr(), b.as_ref().as_ptr()));
    }

    #[test]
    fn debug_is_byte_string() {
        assert_eq!(format!("{:?}", Bytes::from("a\"b")), r#"b"a\"b""#);
    }
}
