//! Offline shim for `rayon`: the parallel-iterator API surface the
//! workspace uses, executed sequentially.
//!
//! `par_iter()`/`into_par_iter()` return a [`SeqIter`] adapter whose
//! `map`/`filter`/`fold`/`reduce`/`sum`/`collect` mirror rayon's
//! semantics: `fold` produces per-"thread" partial accumulators (here a
//! single one) and `reduce` merges them with the identity. Call sites
//! compile unchanged; they just run on one core, which is acceptable for
//! this repo's test/bench workloads until a real work-stealing pool is
//! reintroduced.

pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator, SeqIter};
}

/// Sequential stand-in for rayon's `ParallelIterator` types.
pub struct SeqIter<I>(I);

/// Marker trait so `use rayon::prelude::*` keeps working for generic
/// bounds (`T: ParallelIterator` is not used in-repo, but the name is
/// part of the prelude).
pub trait ParallelIterator {}
impl<I> ParallelIterator for SeqIter<I> {}

impl<I: Iterator> SeqIter<I> {
    pub fn map<B, F: FnMut(I::Item) -> B>(self, f: F) -> SeqIter<std::iter::Map<I, F>> {
        SeqIter(self.0.map(f))
    }

    pub fn filter<F: FnMut(&I::Item) -> bool>(self, f: F) -> SeqIter<std::iter::Filter<I, F>> {
        SeqIter(self.0.filter(f))
    }

    /// Rayon-style fold: returns the stream of per-split partial
    /// accumulators (exactly one here).
    pub fn fold<A, ID, F>(self, identity: ID, fold_op: F) -> SeqIter<std::iter::Once<A>>
    where
        ID: Fn() -> A,
        F: FnMut(A, I::Item) -> A,
    {
        SeqIter(std::iter::once(self.0.fold(identity(), fold_op)))
    }

    /// Rayon-style reduce: merge all partial results with `op`, seeded
    /// from `identity`.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> I::Item
    where
        ID: Fn() -> I::Item,
        OP: FnMut(I::Item, I::Item) -> I::Item,
    {
        self.0.fold(identity(), op)
    }

    pub fn sum<S: std::iter::Sum<I::Item>>(self) -> S {
        self.0.sum()
    }

    pub fn count(self) -> usize {
        self.0.count()
    }

    pub fn collect<C: FromIterator<I::Item>>(self) -> C {
        self.0.collect()
    }

    pub fn for_each<F: FnMut(I::Item)>(self, f: F) {
        self.0.for_each(f)
    }

    pub fn max(self) -> Option<I::Item>
    where
        I::Item: Ord,
    {
        self.0.max()
    }

    pub fn min(self) -> Option<I::Item>
    where
        I::Item: Ord,
    {
        self.0.min()
    }
}

/// `collection.into_par_iter()` for any owned iterable.
pub trait IntoParallelIterator {
    type Item;
    type IntoIter: Iterator<Item = Self::Item>;
    fn into_par_iter(self) -> SeqIter<Self::IntoIter>;
}

impl<C: IntoIterator> IntoParallelIterator for C {
    type Item = C::Item;
    type IntoIter = C::IntoIter;
    fn into_par_iter(self) -> SeqIter<Self::IntoIter> {
        SeqIter(self.into_iter())
    }
}

/// `slice.par_iter()` for shared slices (and anything derefing to one).
pub trait IntoParallelRefIterator<'data> {
    type Item: 'data;
    type Iter: Iterator<Item = &'data Self::Item>;
    fn par_iter(&'data self) -> SeqIter<Self::Iter>;
}

impl<'data, T: 'data + Sync> IntoParallelRefIterator<'data> for [T] {
    type Item = T;
    type Iter = std::slice::Iter<'data, T>;
    fn par_iter(&'data self) -> SeqIter<Self::Iter> {
        SeqIter(self.iter())
    }
}

impl<'data, T: 'data + Sync> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = T;
    type Iter = std::slice::Iter<'data, T>;
    fn par_iter(&'data self) -> SeqIter<Self::Iter> {
        SeqIter(self.iter())
    }
}

/// Scoped task spawning backed by real OS threads (`std::thread::scope`).
///
/// Unlike the `SeqIter` shims above — which stay sequential so the
/// simulator's iteration order is reproducible — `scope`/`join` provide
/// genuine parallelism for code that explicitly wants it (the cluster's
/// batched reintegration drain). All spawned tasks are joined before
/// `scope` returns; a panicking task propagates the panic at the join,
/// like upstream rayon.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn `body` onto its own thread within the scope.
    pub fn spawn<F>(&self, body: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        self.inner.spawn(body);
    }
}

/// Run `f` with a [`Scope`] that can spawn borrowing tasks; returns once
/// every spawned task has finished.
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    std::thread::scope(|s| f(&Scope { inner: s }))
}

/// Run two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        let rb = match hb.join() {
            Ok(v) => v,
            Err(p) => std::panic::resume_unwind(p),
        };
        (ra, rb)
    })
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn fold_reduce_matches_sequential() {
        let xs: Vec<u64> = (0..100).collect();
        let hist = xs
            .par_iter()
            .fold(
                || vec![0u64; 4],
                |mut acc, &x| {
                    acc[(x % 4) as usize] += 1;
                    acc
                },
            )
            .reduce(
                || vec![0u64; 4],
                |mut a, b| {
                    for (x, y) in a.iter_mut().zip(b) {
                        *x += y;
                    }
                    a
                },
            );
        assert_eq!(hist, vec![25, 25, 25, 25]);
    }

    #[test]
    fn map_sum_and_into_par_iter() {
        let xs = vec![1u64, 2, 3];
        let s: u64 = xs.par_iter().map(|&x| x * 2).sum();
        assert_eq!(s, 12);
        let doubled: Vec<u64> = xs.into_par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6]);
    }

    #[test]
    fn scope_joins_all_spawned_tasks() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let total = AtomicU64::new(0);
        super::scope(|s| {
            for i in 0..8u64 {
                let total = &total;
                s.spawn(move || {
                    total.fetch_add(i, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 28);
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = super::join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }
}
